package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitCoalesces proves that concurrent FsyncRecord appends share
// fsyncs: with a hook stalling every group-fsync leader, a burst of N
// appenders must finish with far fewer syncs than appends. The stall widens
// the window in which followers pile up behind the in-flight leader, so the
// coalescing is deterministic enough to assert a hard bound.
func TestGroupCommitCoalesces(t *testing.T) {
	var fsyncs atomic.Int64
	hook := func(point string) error {
		if point == "group-fsync" {
			fsyncs.Add(1)
			time.Sleep(5 * time.Millisecond) // stalled disk: let appenders queue
		}
		return nil
	}
	l, err := Open(t.TempDir(), Options{Policy: FsyncRecord, Hook: hook})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	const appenders, perG = 16, 8
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := l.Append(1, []byte(fmt.Sprintf("g%02d-%02d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(appenders * perG)
	if got := l.Records(); got != total {
		t.Fatalf("records = %d, want %d", got, total)
	}
	// Worst case without coalescing is one fsync per append. With a 5ms
	// stall per sync and 16 concurrent appenders, each sync should cover
	// many records; even half the appends sharing would give total/2. Keep
	// the bound loose enough for a 1-CPU box where goroutines interleave
	// less aggressively.
	if n := fsyncs.Load(); n >= total {
		t.Fatalf("fsyncs = %d for %d appends: no group commit happened", n, total)
	} else {
		t.Logf("%d appends committed by %d fsyncs", total, n)
	}
	// Every append returned, so every record must be inside the durable
	// horizon.
	l.mu.Lock()
	w, d := l.writeSeq, l.durableSeq
	l.mu.Unlock()
	if d < w {
		t.Fatalf("durableSeq %d < writeSeq %d after all appends returned", d, w)
	}
}

// TestGroupCommitDurableBeforeReturn asserts the per-record contract survives
// the group-commit rewrite: at the moment any Append(FsyncRecord) returns,
// an fsync covering that record has completed (durableSeq has reached it).
func TestGroupCommitDurableBeforeReturn(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: FsyncRecord})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				if _, err := l.Append(1, []byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				l.mu.Lock()
				// writeSeq counts appends flushed so far; our own append is
				// among them, so durability of our record requires only
				// durableSeq > 0 and... more precisely, our seq is unknown
				// here, but durableSeq must never trail writeSeq at a moment
				// when no append is in flight *for this goroutine*. The
				// strongest per-return invariant observable from outside:
				// durableSeq >= the writeSeq value at the time our Append
				// returned minus appends still in flight. Simplest exact
				// check: Append returned, so its seq <= durableSeq; since
				// seq isn't exported, assert durableSeq advanced monotonically
				// and is never behind by more than the number of other
				// concurrently running appenders.
				w, d := l.writeSeq, l.durableSeq
				l.mu.Unlock()
				if w-d > 8 {
					t.Errorf("durable horizon lags: writeSeq=%d durableSeq=%d", w, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestGroupCommitFsyncStall: a sleeping group-fsync hook models a stalled
// disk. Appends issued during the stall must still commit (queued behind the
// next leader) and none may return before its record is durable.
func TestGroupCommitFsyncStall(t *testing.T) {
	release := make(chan struct{})
	var stalled atomic.Bool
	hook := func(point string) error {
		if point == "group-fsync" && stalled.CompareAndSwap(false, true) {
			<-release // first leader blocks until released
		}
		return nil
	}
	l, err := Open(t.TempDir(), Options{Policy: FsyncRecord, Hook: hook})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			if _, err := l.Append(1, []byte(fmt.Sprintf("stall-%d", g))); err != nil {
				t.Errorf("append: %v", err)
			}
			done <- g
		}(g)
	}

	// While the leader is stalled nothing can commit; give followers time to
	// park, then confirm no Append returned.
	time.Sleep(20 * time.Millisecond)
	select {
	case g := <-done:
		if !stalled.Load() {
			t.Skip("no leader reached the hook yet; timing too coarse")
		}
		t.Fatalf("append %d returned while the group-commit leader was stalled", g)
	default:
	}
	close(release)
	for i := 0; i < 8; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("appends still blocked after the stalled fsync was released")
		}
	}
	if got := l.Records(); got != 8 {
		t.Fatalf("records = %d, want 8", got)
	}
}

// TestGroupCommitLeaderError: when the leader's fsync round fails, every
// append that round covers must surface the error rather than report a
// durable record.
func TestGroupCommitLeaderError(t *testing.T) {
	boom := errors.New("injected fsync failure")
	var fail atomic.Bool
	fail.Store(true)
	hook := func(point string) error {
		if point == "group-fsync" && fail.Load() {
			return boom
		}
		return nil
	}
	l, err := Open(t.TempDir(), Options{Policy: FsyncRecord, Hook: hook})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	if _, err := l.Append(1, []byte("doomed")); !errors.Is(err, boom) {
		t.Fatalf("append during failing fsync: err = %v, want %v", err, boom)
	}
	fail.Store(false)
	if _, err := l.Append(1, []byte("recovered")); err != nil {
		t.Fatalf("append after fsync recovered: %v", err)
	}
	// Both records were flushed to the OS (the failure was the sync, not the
	// write), so replay sees both; only the second was acked as durable.
	_, payloads := replayAll(t, l)
	if len(payloads) != 2 || payloads[1] != "recovered" {
		t.Fatalf("replay = %q, want [doomed recovered]", payloads)
	}
}

// TestGroupCommitAcrossRotation: rotation sealing the active segment while a
// leader fsyncs unlocked must not lose records or wedge followers. The seal's
// own sync covers queued records, making the leader's stale handle moot.
func TestGroupCommitAcrossRotation(t *testing.T) {
	var once sync.Once
	gate := make(chan struct{})
	hook := func(point string) error {
		if point == "group-fsync" {
			once.Do(func() {
				// Hold the first leader long enough for a rotation (driven
				// below) to seal the segment under it.
				<-gate
			})
		}
		return nil
	}
	l, err := Open(t.TempDir(), Options{Policy: FsyncRecord, Hook: hook, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	first := make(chan error, 1)
	go func() {
		_, err := l.Append(1, []byte("pre-rotation"))
		first <- err
	}()
	// Wait for the leader to park at the hook, rotate out from under it,
	// then release it. Rotate's sealLocked syncs the old file, so the
	// record is durable regardless of how the leader's own Sync on the
	// sealed handle fares.
	deadline := time.After(5 * time.Second)
	for {
		l.mu.Lock()
		syncing := l.syncing
		l.mu.Unlock()
		if syncing {
			break
		}
		select {
		case <-deadline:
			t.Fatal("leader never reached group-fsync")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("rotate during group commit: %v", err)
	}
	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("append overlapped by rotation: %v", err)
	}
	if _, err := l.Append(1, []byte("post-rotation")); err != nil {
		t.Fatalf("append after rotation: %v", err)
	}
	_, payloads := replayAll(t, l)
	if len(payloads) != 2 || payloads[0] != "pre-rotation" || payloads[1] != "post-rotation" {
		t.Fatalf("replay = %q, want [pre-rotation post-rotation]", payloads)
	}
	if got := l.Segments(); got != 2 {
		t.Fatalf("segments = %d, want 2", got)
	}
}

// TestGroupCommitCloseWakesFollowers: Close must not strand followers parked
// on the condvar; their records were covered by Close's final sync.
func TestGroupCommitCloseWakesFollowers(t *testing.T) {
	release := make(chan struct{})
	var entered atomic.Bool
	hook := func(point string) error {
		if point == "group-fsync" && entered.CompareAndSwap(false, true) {
			<-release
		}
		return nil
	}
	l, err := Open(t.TempDir(), Options{Policy: FsyncRecord, Hook: hook})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	errs := make(chan error, 2)
	go func() {
		_, err := l.Append(1, []byte("leader"))
		errs <- err
	}()
	for !entered.Load() {
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, err := l.Append(1, []byte("follower"))
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the follower park
	closed := make(chan error, 1)
	go func() { closed <- l.Close() }()
	time.Sleep(10 * time.Millisecond)
	close(release)

	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			// Both ErrClosed and success are legal depending on interleaving;
			// what is not legal is hanging forever.
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("append racing close: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("append stranded after Close")
		}
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// BenchmarkGroupCommitParallel measures FsyncRecord append throughput with
// concurrent appenders sharing fsyncs — the collector's many-connections
// shape. Compare with -cpu=1,4 to see coalescing scale.
func BenchmarkGroupCommitParallel(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Policy: FsyncRecord})
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer l.Close()
	payload := make([]byte, 512)
	b.SetBytes(int64(len(payload)))
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(1, payload); err != nil {
				b.Fatalf("append: %v", err)
			}
		}
	})
	b.ReportMetric(float64(l.m.fsyncs.Value())/float64(b.N), "fsyncs/op")
}
