// Package wal is a segment-based append-only write-ahead log shared by the
// collector (batch durability + dedup recovery) and the agent (disk spool).
// Records survive process death: every append is flushed to the OS before it
// is acknowledged, and an fsync policy (per-record, interval, or off)
// controls durability across power loss as well.
//
// On-disk layout: a directory of numbered segment files, each starting with
// a 5-byte magic header followed by records. One record is
//
//	type byte | uvarint payload length | payload | CRC-32C(type+payload), BE
//
// identical in spirit to the proto frame format, so a torn or bit-flipped
// record is a detected failure. Open repairs a torn tail — a record in the
// final segment that is incomplete or fails its CRC at end of file is the
// residue of a crash mid-append and is truncated away. Corruption anywhere
// else (a sealed segment, or mid-segment with intact records after it) is
// not a crash artifact and stops Replay with ErrCorrupt.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"smartusage/internal/obs"
)

// segMagic opens every segment file.
var segMagic = []byte("SWAL1")

// MaxRecordSize bounds one record payload; collector batches are capped well
// below this by the proto frame limit.
const MaxRecordSize = 8 << 20

// Fsync policies.
type Policy int

const (
	// FsyncRecord syncs the segment file after every append: an
	// acknowledged record survives power loss. This is the collector
	// default — an acked batch must never be lost. Concurrent appenders
	// group-commit: one fsync covers every record flushed before it
	// started, so N connections committing together pay ~1 fsync, not N
	// (each Append still blocks until a sync covers its own record).
	FsyncRecord Policy = iota
	// FsyncInterval syncs at most every Options.Interval: bounded data loss
	// on power failure, far fewer fsyncs under load.
	FsyncInterval
	// FsyncOff never syncs explicitly (the OS writes back on its own
	// schedule). Appends still survive process death, not power loss.
	FsyncOff
)

// ParsePolicy parses a -fsync flag value: "batch"/"record", "interval", "off".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "batch", "record":
		return FsyncRecord, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want batch, interval, or off)", s)
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FsyncRecord:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (default 64 MiB).
	SegmentBytes int64
	// Policy is the fsync policy (default FsyncRecord).
	Policy Policy
	// Interval is the FsyncInterval period (default 1s).
	Interval time.Duration
	// Hook, when non-nil, is consulted at crash points ("wal-append",
	// "pre-fsync") for fault injection; a non-nil return aborts the
	// operation as a crash would. See faultnet.CrashPlan. It is also
	// consulted at "group-fsync" by a group-commit leader immediately
	// before its fsync, with the log lock released — a hook that sleeps
	// there models a stalled disk while appenders keep queueing behind the
	// commit; a non-nil return fails that commit round.
	Hook func(point string) error
	// Metrics, when non-nil, receives wal_* counters (appends, bytes,
	// fsyncs, rotations, torn-tail bytes) labeled wal=MetricsName.
	Metrics *obs.Registry
	// MetricsName distinguishes multiple logs in one registry (e.g.
	// "collector" vs "agent_spool"). Default "wal".
	MetricsName string
}

// walMetrics holds the log's instruments; all fields are nil (no-op) when
// Options.Metrics is unset.
type walMetrics struct {
	appends   *obs.Counter
	bytes     *obs.Counter
	fsyncs    *obs.Counter
	rotations *obs.Counter
	torn      *obs.Counter
}

func newWALMetrics(reg *obs.Registry, name string) walMetrics {
	if name == "" {
		name = "wal"
	}
	l := obs.L("wal", name)
	reg.SetHelp("wal_appends_total", "Records appended to the write-ahead log.")
	reg.SetHelp("wal_append_bytes_total", "Framed bytes appended to the write-ahead log.")
	reg.SetHelp("wal_fsyncs_total", "fsync calls issued against WAL segments.")
	reg.SetHelp("wal_rotations_total", "Segment rotations.")
	reg.SetHelp("wal_torn_bytes_total", "Torn-tail bytes truncated during open-time repair.")
	return walMetrics{
		appends:   reg.Counter("wal_appends_total", l),
		bytes:     reg.Counter("wal_append_bytes_total", l),
		fsyncs:    reg.Counter("wal_fsyncs_total", l),
		rotations: reg.Counter("wal_rotations_total", l),
		torn:      reg.Counter("wal_torn_bytes_total", l),
	}
}

// Errors.
var (
	// ErrCorrupt marks a record that fails its CRC (or frames past the
	// payload bound) somewhere other than the repairable tail.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// LSN is a log sequence number: a position in the log, ordered first by
// segment then by byte offset of the record within it.
type LSN struct {
	Seg uint64 // segment sequence number
	Off int64  // byte offset of the record's type byte
}

// Before reports whether a precedes b in the log.
func (a LSN) Before(b LSN) bool {
	if a.Seg != b.Seg {
		return a.Seg < b.Seg
	}
	return a.Off < b.Off
}

func (a LSN) String() string { return fmt.Sprintf("%d:%d", a.Seg, a.Off) }

// sealed describes one finished (read-only) segment.
type sealed struct {
	seq   uint64
	bytes int64
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options
	m    walMetrics // instruments; nil fields no-op when metrics are off

	mu       sync.Mutex
	sealedSt []sealed      // guarded by mu
	f        *os.File      // guarded by mu
	bw       *bufio.Writer // guarded by mu
	// seq is the current segment sequence. guarded by mu
	seq uint64
	// off is the current segment size (bytes written incl. header).
	// guarded by mu
	off     int64
	records int64 // guarded by mu
	// torn counts bytes truncated during Open's tail repair. guarded by mu
	torn int64
	// writeSeq numbers appends as they are flushed to the OS; durableSeq is
	// the highest writeSeq covered by an fsync. Records in sealed segments
	// are synced at seal time, so after fsyncing the active segment at a
	// moment when writeSeq == S, every append numbered <= S is durable.
	// durableSeq < writeSeq is the old "dirty" state. guarded by mu
	writeSeq   int64
	durableSeq int64
	// syncing marks a group-commit leader's fsync in flight (running with
	// mu released so appenders keep writing behind it). guarded by mu
	syncing bool
	// syncedCond is broadcast whenever durableSeq advances or the log
	// closes, waking group-commit followers.
	syncedCond *sync.Cond
	closed     bool // guarded by mu

	stopSync chan struct{} // interval-policy syncer
	syncDone chan struct{}
}

// Open opens (creating if needed) the log in dir, repairing a torn tail
// record left by a crash mid-append. The returned log appends after the last
// intact record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{dir: dir, opts: opts, m: newWALMetrics(opts.Metrics, opts.MetricsName)}
	l.syncedCond = sync.NewCond(&l.mu)
	seqs, err := l.scanDir()
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		if err := l.openSegmentLocked(0); err != nil {
			return nil, err
		}
	} else {
		// All but the last are sealed; the last is repaired and reopened
		// for appending.
		for _, seq := range seqs[:len(seqs)-1] {
			fi, err := os.Stat(l.segPath(seq))
			if err != nil {
				return nil, fmt.Errorf("wal: stat segment: %w", err)
			}
			l.sealedSt = append(l.sealedSt, sealed{seq: seq, bytes: fi.Size()})
		}
		last := seqs[len(seqs)-1]
		size, n, err := repairTail(l.segPath(last))
		if err != nil {
			return nil, err
		}
		l.torn = n
		l.m.torn.Add(n)
		f, err := os.OpenFile(l.segPath(last), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		l.f, l.bw = f, bufio.NewWriterSize(f, 64<<10)
		l.seq, l.off = last, size
	}
	if opts.Policy == FsyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scanDir lists existing segment sequence numbers in order.
func (l *Log) scanDir() ([]uint64, error) {
	matches, err := filepath.Glob(filepath.Join(l.dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, m := range matches {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(m), "wal-%d.log", &seq); err != nil {
			continue // foreign file; leave it alone
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%08d.log", seq))
}

// repairTail scans one segment, truncating a torn final record (incomplete
// bytes or a CRC failure that extends to end of file). It returns the size
// after repair and how many bytes were cut. Corruption that is not a tail —
// a bad record with intact framing after it cannot be distinguished once the
// stream desynchronizes, so any scan error here is treated as the tail; the
// mid-segment ErrCorrupt case applies to sealed segments, which are never
// repaired.
func repairTail(path string) (size, torn int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	// The segment was opened read-write and may have been truncated: a
	// failed close can mean the repair never reached the disk.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			size, torn = 0, 0
			err = fmt.Errorf("wal: close repaired segment: %w", cerr)
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	total := fi.Size()
	if total < int64(len(segMagic)) {
		// Crash between create and header write: rewrite the header.
		if err := f.Truncate(0); err != nil {
			return 0, 0, err
		}
		if _, err := f.WriteAt(segMagic, 0); err != nil {
			return 0, 0, err
		}
		return int64(len(segMagic)), total, nil
	}
	good, _, err := scanSegment(f, nil)
	if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return 0, 0, err
	}
	if good < total {
		if err := f.Truncate(good); err != nil {
			return 0, 0, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		return good, total - good, nil
	}
	return total, 0, nil
}

// scanSegment reads records from the segment's start, calling fn (when
// non-nil) for each intact record with its starting offset. It returns the
// offset of the first byte past the last intact record; err reports why the
// scan stopped early (io.EOF for a clean end is mapped to nil).
func scanSegment(f *os.File, fn func(off int64, typ byte, payload []byte) error) (int64, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	hdr := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, 0, fmt.Errorf("wal: segment header: %w", err)
	}
	if string(hdr) != string(segMagic) {
		return 0, 0, fmt.Errorf("wal: bad segment magic %q", hdr)
	}
	off := int64(len(segMagic))
	var n int64
	var buf []byte
	for {
		typ, payload, used, err := readRecord(br, &buf)
		if err == io.EOF {
			return off, n, nil
		}
		if err != nil {
			return off, n, err
		}
		if fn != nil {
			if err := fn(off, typ, payload); err != nil {
				return off, n, err
			}
		}
		off += used
		n++
	}
}

// readRecord reads one framed record. io.EOF means a clean record boundary;
// io.ErrUnexpectedEOF means the record is incomplete (torn); ErrCorrupt
// means the CRC failed or the frame is malformed.
func readRecord(br *bufio.Reader, buf *[]byte) (typ byte, payload []byte, used int64, err error) {
	tb, err := br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, err
	}
	size, sn, err := readUvarint(br)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, 0, io.ErrUnexpectedEOF
		}
		return 0, nil, 0, err
	}
	if size > MaxRecordSize {
		return 0, nil, 0, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, size)
	}
	need := int(size) + 4
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	b := (*buf)[:need]
	if _, err := io.ReadFull(br, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, 0, io.ErrUnexpectedEOF
		}
		return 0, nil, 0, err
	}
	payload = b[:size]
	sum := crc32.Update(0, crcTable, []byte{tb})
	sum = crc32.Update(sum, crcTable, payload)
	if binary.BigEndian.Uint32(b[size:]) != sum {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return tb, payload, 1 + int64(sn) + int64(need), nil
}

// readUvarint is binary.ReadUvarint plus a count of bytes consumed.
func readUvarint(br *bufio.Reader) (uint64, int, error) {
	var v uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, i, err
		}
		if i == binary.MaxVarintLen64 {
			return 0, i, fmt.Errorf("%w: varint overflow", ErrCorrupt)
		}
		if b < 0x80 {
			return v | uint64(b)<<s, i + 1, nil
		}
		v |= uint64(b&0x7f) << s
		s += 7
	}
}

// openSegmentLocked creates and switches to segment seq. Callers hold l.mu
// (or own the log exclusively, as Open does).
func (l *Log) openSegmentLocked(seq uint64) error {
	f, err := os.Create(l.segPath(seq))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	if _, err := bw.Write(segMagic); err != nil {
		f.Close() //smuvet:allow closeerr -- write error is primary; the segment is abandoned
		return err
	}
	l.f, l.bw = f, bw
	l.seq, l.off = seq, int64(len(segMagic))
	return nil
}

// Append writes one record and flushes it to the OS; per policy it also
// fsyncs. It returns the record's LSN. Rotation to a new segment happens
// before the write when the current segment is over budget, so one record
// never spans segments.
func (l *Log) Append(typ byte, payload []byte) (LSN, error) {
	lsn, seq, err := l.AppendAsync(typ, payload)
	if err != nil {
		return lsn, err
	}
	if l.opts.Policy == FsyncRecord {
		if err := l.Commit(seq); err != nil {
			return LSN{}, err
		}
	}
	return lsn, nil
}

// AppendAsync is Append minus the FsyncRecord durability wait: the record is
// flushed to the OS (it survives process death) and the returned commit token
// must be passed to Commit before the record may be acknowledged as durable.
// Splitting the two lets a caller that serializes appends under its own lock
// (the collector) release that lock before waiting on the fsync, so commits
// from concurrent connections actually coalesce into shared group-commit
// rounds instead of serializing one fsync each.
func (l *Log) AppendAsync(typ byte, payload []byte) (LSN, int64, error) {
	if len(payload) > MaxRecordSize {
		return LSN{}, 0, fmt.Errorf("wal: record payload %d exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return LSN{}, 0, ErrClosed
	}
	if l.off >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return LSN{}, 0, err
		}
	}

	var frame []byte
	frame = append(frame, typ)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	sum := crc32.Update(0, crcTable, []byte{typ})
	sum = crc32.Update(sum, crcTable, payload)
	frame = binary.BigEndian.AppendUint32(frame, sum)

	if h := l.opts.Hook; h != nil {
		if err := h("wal-append"); err != nil {
			if errors.Is(err, ErrCrashTorn) {
				// Simulate dying mid-append: a strict prefix of the frame
				// reaches the OS, producing the torn tail Open must repair.
				l.bw.Write(frame[:len(frame)/2])
				l.bw.Flush()
			}
			return LSN{}, 0, err
		}
	}

	lsn := LSN{Seg: l.seq, Off: l.off}
	if _, err := l.bw.Write(frame); err != nil {
		return LSN{}, 0, fmt.Errorf("wal: append: %w", err)
	}
	if err := l.bw.Flush(); err != nil {
		return LSN{}, 0, fmt.Errorf("wal: flush: %w", err)
	}
	l.off += int64(len(frame))
	l.records++
	l.writeSeq++
	seq := l.writeSeq
	l.m.appends.Inc()
	l.m.bytes.Add(int64(len(frame)))

	if h := l.opts.Hook; h != nil {
		// The record is in the OS (survives process death) but not yet
		// synced (may not survive power loss).
		if err := h("pre-fsync"); err != nil {
			return LSN{}, 0, err
		}
	}
	return lsn, seq, nil
}

// Commit blocks until the append identified by a token from AppendAsync is
// covered by an fsync, joining (or leading) a group-commit round. Under
// policies other than FsyncRecord it is a no-op: FsyncInterval and FsyncOff
// accept a bounded durability window by design, and the interval loop or
// Close picks the record up. A zero token (no append happened) is a no-op.
func (l *Log) Commit(seq int64) error {
	if seq <= 0 || l.opts.Policy != FsyncRecord {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed && l.durableSeq < seq {
		return ErrClosed
	}
	return l.commitLocked(seq)
}

// Barrier returns a commit token covering every append flushed so far. Pass
// it to Commit to make all of them durable — the collector uses it on the
// partial-resume path, where the batch's WAL record was appended by an
// earlier attempt whose connection died before committing.
func (l *Log) Barrier() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeSeq
}

// commitLocked blocks until an fsync covers append number seq — the group
// commit. Called (and returning) with l.mu held. The first waiter whose
// record is not yet durable becomes the leader: it captures the current file
// and writeSeq, releases the lock, fsyncs, and re-acquires to publish the
// new durable horizon. Appends that land while the leader's fsync is in
// flight keep writing into the buffer and queue behind the next leader, so a
// burst of N concurrent appends is committed by ~1 fsync instead of N —
// without weakening the contract that Append(FsyncRecord) only returns once
// its own record is on stable storage.
func (l *Log) commitLocked(seq int64) error {
	for l.durableSeq < seq {
		if l.closed {
			return ErrClosed
		}
		if l.syncing {
			// A leader's fsync is in flight; it may have started before our
			// record was flushed, so wait for its verdict and re-check.
			l.syncedCond.Wait()
			continue
		}
		l.syncing = true
		f, target := l.f, l.writeSeq
		l.mu.Unlock()
		var err error
		if h := l.opts.Hook; h != nil {
			err = h("group-fsync")
		}
		if err == nil {
			err = f.Sync()
		}
		l.mu.Lock()
		l.syncing = false
		if err == nil && target > l.durableSeq {
			l.durableSeq = target
			l.m.fsyncs.Inc()
		}
		l.syncedCond.Broadcast()
		if err != nil && l.durableSeq < seq {
			// A rotation can seal (flush + sync + close) the captured file
			// while the leader runs unlocked; the seal's own sync then
			// already covered seq and the stale-handle error is moot.
			// Reaching here means no sync covered this record: real failure.
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	return nil
}

// ErrCrashTorn asks Append's crash hook path to leave a torn half-record
// behind; faultnet returns it for the "wal-append" crash point.
var ErrCrashTorn = errors.New("wal: injected crash mid-append")

// Sync fsyncs the current segment file.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.durableSeq >= l.writeSeq {
		return nil
	}
	//smuvet:allow lockorder -- seal/Sync/interval path: callers asked for a synchronous barrier, so the lock stays held; the per-record path goes through commitLocked, which releases l.mu around the fsync
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.durableSeq = l.writeSeq
	l.m.fsyncs.Inc()
	// Group-commit followers may be parked on the condvar; this sync (from
	// a seal, Sync call, or the interval loop) covers their records too.
	l.syncedCond.Broadcast()
	return nil
}

// syncLoop services the FsyncInterval policy.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.bw.Flush()
				l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.stopSync:
			return
		}
	}
}

// Rotate seals the current segment and opens the next one.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if err := l.sealLocked(); err != nil {
		return err
	}
	if err := l.openSegmentLocked(l.seq + 1); err != nil {
		return err
	}
	l.m.rotations.Inc()
	return l.syncDir()
}

// sealLocked flushes, syncs, and closes the current segment, recording it as
// sealed.
func (l *Log) sealLocked() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	l.sealedSt = append(l.sealedSt, sealed{seq: l.seq, bytes: l.off})
	return nil
}

// syncDir fsyncs the log directory so renames/creates/removals are durable.
func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return nil // best effort; not all platforms allow dir fsync
	}
	defer d.Close()
	d.Sync()
	return nil
}

// Replay streams every record, sealed segments first then the active one, in
// append order. A CRC failure in a sealed segment (or anywhere that is not
// the repaired tail) surfaces as ErrCorrupt with the segment named. Replay
// flushes pending appends first, so it observes everything appended so far.
func (l *Log) Replay(fn func(lsn LSN, typ byte, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.bw.Flush(); err != nil {
		l.mu.Unlock()
		return err
	}
	segs := make([]uint64, 0, len(l.sealedSt)+1)
	for _, s := range l.sealedSt {
		segs = append(segs, s.seq)
	}
	segs = append(segs, l.seq)
	l.mu.Unlock()

	for _, seq := range segs {
		f, err := os.Open(l.segPath(seq))
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		_, _, err = scanSegment(f, func(off int64, typ byte, payload []byte) error {
			return fn(LSN{Seg: seq, Off: off}, typ, payload)
		})
		f.Close()
		if err != nil {
			return fmt.Errorf("wal: replay segment %d: %w", seq, err)
		}
	}
	return nil
}

// TruncateBefore removes sealed segments that end before lsn's segment —
// i.e. whose every record precedes lsn. The segment containing lsn (and the
// active segment) are always retained. It returns how many segments were
// removed.
func (l *Log) TruncateBefore(lsn LSN) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	kept := l.sealedSt[:0]
	for _, s := range l.sealedSt {
		if s.seq < lsn.Seg {
			if err := os.Remove(l.segPath(s.seq)); err != nil {
				return removed, fmt.Errorf("wal: retention: %w", err)
			}
			removed++
			continue
		}
		kept = append(kept, s)
	}
	l.sealedSt = kept
	if removed > 0 {
		l.syncDir()
	}
	return removed, nil
}

// Reset discards every record and restarts the log empty at segment 0 — the
// agent spool truncates this way once everything pending has been acked.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	for _, s := range l.sealedSt {
		if err := os.Remove(l.segPath(s.seq)); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	if err := os.Remove(l.segPath(l.seq)); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.sealedSt = nil
	l.records = 0
	l.durableSeq = l.writeSeq
	l.syncedCond.Broadcast()
	if err := l.openSegmentLocked(0); err != nil {
		return err
	}
	return l.syncDir()
}

// Close flushes, syncs, and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.bw.Flush()
	if serr := l.syncLocked(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	// Wake group-commit followers so they observe closed instead of
	// parking forever (their records were covered by the sync above
	// anyway, unless it failed).
	l.syncedCond.Broadcast()
	l.mu.Unlock()
	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	return err
}

// Segments returns how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealedSt) + 1
}

// Bytes returns the total size of all live segments.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.off
	for _, s := range l.sealedSt {
		n += s.bytes
	}
	return n
}

// Records returns how many records have been appended since Open (replayed
// pre-existing records are not counted).
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Torn returns how many bytes of torn tail Open truncated away.
func (l *Log) Torn() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.torn
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }
