package macro

import (
	"math"
	"testing"
)

func TestFig1SeriesMonotone(t *testing.T) {
	for i := 1; i < len(Fig1Series); i++ {
		prev, cur := Fig1Series[i-1], Fig1Series[i]
		if cur.Year != prev.Year+1 {
			t.Fatalf("year gap at %d", cur.Year)
		}
		if cur.RBBGbps <= prev.RBBGbps {
			t.Fatalf("broadband volume not growing at %d", cur.Year)
		}
		if cur.CellGbps < prev.CellGbps {
			t.Fatalf("cellular volume shrinking at %d", cur.Year)
		}
	}
}

func TestCellShare2014IsTwentyPercent(t *testing.T) {
	share, err := CellShareOfRBB(2014)
	if err != nil {
		t.Fatal(err)
	}
	// §1: "cellular traffic volume ... accounted for 20% of the residential
	// broadband traffic volume at the end of 2014".
	if math.Abs(share-0.20) > 0.015 {
		t.Fatalf("2014 share %.3f want ~0.20", share)
	}
}

func TestCellShareErrors(t *testing.T) {
	if _, err := CellShareOfRBB(1999); err == nil {
		t.Fatal("unknown year accepted")
	}
}

func TestImplicationsPaperNumbers(t *testing.T) {
	// Feeding the paper's own 2015 medians must reproduce §4.1.
	im, err := ComputeImplications(2015, 35.6, 50.7, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(im.WiFiToCellRatio-1.42) > 0.03 {
		t.Fatalf("ratio %.2f want ~1.4", im.WiFiToCellRatio)
	}
	if math.Abs(im.SmartphoneWiFiShare-0.587) > 0.01 {
		t.Fatalf("share %.3f want ~0.59", im.SmartphoneWiFiShare)
	}
	// 20% x 1.4 x 0.95 ≈ 0.27-0.28.
	if math.Abs(im.OffloadShareOfRBB-0.27) > 0.03 {
		t.Fatalf("RBB share %.3f want ~0.28", im.OffloadShareOfRBB)
	}
	// 50.7 / 436 ≈ 0.116.
	if math.Abs(im.PerHomeShare-0.116) > 0.01 {
		t.Fatalf("per-home share %.3f want ~0.12", im.PerHomeShare)
	}
}

func TestImplicationsErrors(t *testing.T) {
	if _, err := ComputeImplications(2015, 0, 50, 0.9); err == nil {
		t.Fatal("zero median accepted")
	}
	if _, err := ComputeImplications(1990, 30, 50, 0.9); err == nil {
		t.Fatal("unknown year accepted")
	}
}
