// Package macro models the national-scale context data of the paper:
// Fig. 1's residential-broadband vs cellular download growth in Japan
// (sourced from MIC statistics in the paper) and the per-subscriber
// broadband volume used by the §4.1 implication arithmetic.
package macro

import "fmt"

// YearPoint is one year of the Fig. 1 series (download volume in Gbit/s).
type YearPoint struct {
	Year     int
	RBBGbps  float64 // residential broadband user download
	CellGbps float64 // cellular (3G+LTE) user download
}

// Fig1Series approximates the MIC aggregate curves of Fig. 1: residential
// broadband grows roughly 20%/year through the period; cellular download is
// negligible before smartphones and reaches 20% of broadband volume by the
// end of 2014 (§1).
var Fig1Series = []YearPoint{
	{2006, 600, 0},
	{2007, 720, 0},
	{2008, 870, 10},
	{2009, 1020, 25},
	{2010, 1190, 60},
	{2011, 1390, 130},
	{2012, 1650, 250},
	{2013, 1980, 400},
	{2014, 2390, 480},
	{2015, 2900, 580},
}

// CellShareOfRBB returns cellular download volume as a fraction of
// residential broadband download for a year.
func CellShareOfRBB(year int) (float64, error) {
	for _, p := range Fig1Series {
		if p.Year == year {
			if p.RBBGbps == 0 {
				return 0, fmt.Errorf("macro: year %d has no broadband volume", year)
			}
			return p.CellGbps / p.RBBGbps, nil
		}
	}
	return 0, fmt.Errorf("macro: no Fig.1 data for year %d", year)
}

// RBBMedianPerUserMBDay is the median daily download volume of a
// residential broadband customer in a Japanese ISP as of 2015 (436 MB/day,
// §4.1 citing the IIJ broadband traffic report).
const RBBMedianPerUserMBDay = 436.0

// Implications computes the §4.1 arithmetic from measured medians.
type Implications struct {
	// WiFiToCellRatio is median WiFi RX / median cellular RX (1.4:1 in
	// 2015).
	WiFiToCellRatio float64
	// SmartphoneWiFiShare is WiFi's share of median smartphone download
	// (58%).
	SmartphoneWiFiShare float64
	// OffloadShareOfRBB estimates smartphone WiFi traffic as a share of
	// residential broadband volume: cellular-share-of-RBB x
	// WiFi-to-cell ratio x home fraction (≈28%).
	OffloadShareOfRBB float64
	// PerHomeShare is one smartphone's WiFi median over the broadband
	// median per customer (≈12%).
	PerHomeShare float64
}

// ComputeImplications evaluates §4.1 for the given measured medians
// (MB/day) and the home share of WiFi volume (≈0.95).
func ComputeImplications(year int, medianCellMB, medianWiFiMB, homeShare float64) (Implications, error) {
	if medianCellMB <= 0 || medianWiFiMB <= 0 {
		return Implications{}, fmt.Errorf("macro: non-positive medians %g/%g", medianCellMB, medianWiFiMB)
	}
	cellShare, err := CellShareOfRBB(year)
	if err != nil {
		return Implications{}, err
	}
	im := Implications{
		WiFiToCellRatio:     medianWiFiMB / medianCellMB,
		SmartphoneWiFiShare: medianWiFiMB / (medianWiFiMB + medianCellMB),
	}
	im.OffloadShareOfRBB = cellShare * im.WiFiToCellRatio * homeShare
	im.PerHomeShare = medianWiFiMB / RBBMedianPerUserMBDay
	return im, nil
}
