package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// The decode fuzz targets pin the untrusted-bytes contract: any input —
// torn, bit-flipped, or adversarial — either decodes to a valid sketch or
// returns an error. Panics and silent acceptance of invalid state are the
// failure modes. On success, decode∘encode must be the identity on bytes.

func fuzzQuantileSeeds() [][]byte {
	var seeds [][]byte
	empty, _ := NewQuantile(DefaultQuantileConfig()).MarshalBinary()
	seeds = append(seeds, empty)

	r := rand.New(rand.NewSource(42))
	q := NewQuantile(DefaultQuantileConfig())
	for i := 0; i < 5000; i++ {
		q.Add(math.Exp(r.NormFloat64() * 3))
	}
	q.AddN(0, 9)
	full, _ := q.MarshalBinary()
	seeds = append(seeds, full, full[:len(full)/2], append(append([]byte{}, full...), 1, 2, 3))

	tiny := NewQuantile(QuantileConfig{RelAcc: 0.3, Min: 1, Max: 10})
	tiny.Add(3)
	tb, _ := tiny.MarshalBinary()
	seeds = append(seeds, tb)

	// Crafted regression input: a valid header followed by a bin-delta
	// varint of 2^63, which once wrapped negative under int64 conversion
	// and indexed bins[] below zero.
	cfg := DefaultQuantileConfig()
	hostile := []byte(skqMagic)
	hostile = appendFloat(hostile, cfg.RelAcc)
	hostile = appendFloat(hostile, cfg.Min)
	hostile = appendFloat(hostile, cfg.Max)
	hostile = appendUvarint(hostile, 0)     // low
	hostile = appendUvarint(hostile, 1)     // runs
	hostile = appendUvarint(hostile, 1<<63) // delta: overflows int64
	hostile = appendUvarint(hostile, 1)     // count
	seeds = append(seeds, hostile)
	return seeds
}

func FuzzSketchDecode(f *testing.F) {
	for _, s := range fuzzQuantileSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQuantile(data)
		if err != nil {
			return
		}
		// Accepted input must round-trip byte-identically and answer
		// queries without panicking.
		out, err := q.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not identity: %d in, %d out", len(data), len(out))
		}
		for _, p := range []float64{0, 0.5, 1} {
			v := q.Quantile(p)
			if math.IsNaN(v) {
				t.Fatalf("quantile(%g) = NaN from accepted encoding", p)
			}
		}
		_ = q.Sum()
		_ = q.Mean()
	})
}

func FuzzHLLDecode(f *testing.F) {
	empty, _ := NewDistinct().MarshalBinary()
	f.Add(empty)
	d := NewDistinct()
	for i := 0; i < 10000; i++ {
		d.AddUint64(uint64(i))
	}
	full, _ := d.MarshalBinary()
	f.Add(full)
	f.Add(full[:len(full)/3])
	f.Add(append(append([]byte{}, full...), 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDistinct(data)
		if err != nil {
			return
		}
		out, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not identity: %d in, %d out", len(data), len(out))
		}
		if e := d.Estimate(); math.IsNaN(e) || e < 0 {
			t.Fatalf("estimate %g from accepted encoding", e)
		}
	})
}
