package sketch

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestDistinctAccuracy(t *testing.T) {
	// Standard error at precision 12 is ~1.6%; assert 5x that.
	const tol = 0.08
	for _, n := range []int{10, 100, 1000, 50000, 500000} {
		d := NewDistinct()
		for i := 0; i < n; i++ {
			d.AddUint64(uint64(i))
		}
		got := d.Estimate()
		if e := math.Abs(got-float64(n)) / float64(n); e > tol {
			t.Errorf("n=%d: estimate %.0f, rel err %.3f > %.3f", n, got, e, tol)
		}
	}
}

func TestDistinctStringsAndKeys(t *testing.T) {
	d := NewDistinct()
	const n = 20000
	for i := 0; i < n; i++ {
		d.AddString(fmt.Sprintf("essid-%d", i))
	}
	if got := d.Estimate(); math.Abs(got-n)/n > 0.08 {
		t.Errorf("string estimate %.0f for %d", got, n)
	}
	// Composite keys: same number part with different strings (and vice
	// versa) must count separately.
	k := NewDistinct()
	for i := 0; i < 1000; i++ {
		k.AddKey(uint64(i%10), fmt.Sprintf("net-%d", i))
		k.AddKey(uint64(i), "shared")
	}
	if got := k.Estimate(); math.Abs(got-2000)/2000 > 0.08 {
		t.Errorf("key estimate %.0f for 2000", got)
	}
}

func TestDistinctDuplicatesDoNotGrow(t *testing.T) {
	d := NewDistinct()
	for i := 0; i < 100; i++ {
		d.AddUint64(42)
		d.AddString("same")
	}
	if got := d.Count(); got != 2 {
		t.Fatalf("100 duplicate adds of 2 elements estimated %d", got)
	}
}

func TestDistinctMergeIdempotent(t *testing.T) {
	d := NewDistinct()
	for i := 0; i < 10000; i++ {
		d.AddUint64(uint64(i * 7))
	}
	want, _ := d.MarshalBinary()
	d.Merge(d.Clone())
	got, _ := d.MarshalBinary()
	if !bytes.Equal(want, got) {
		t.Fatal("self-merge changed register state")
	}
}

func TestDistinctRoundTrip(t *testing.T) {
	d := NewDistinct()
	for i := 0; i < 5000; i++ {
		d.AddUint64(uint64(i))
	}
	b, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDistinct(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := got.MarshalBinary()
	if !bytes.Equal(b, b2) {
		t.Fatal("decode/re-encode changed bytes")
	}
	if got.Estimate() != d.Estimate() {
		t.Fatal("round trip changed the estimate")
	}
}

func TestDistinctDecodeRejectsCorrupt(t *testing.T) {
	d := NewDistinct()
	d.AddUint64(1)
	valid, _ := d.MarshalBinary()
	overRank := append([]byte{}, valid...)
	overRank[len(overRank)-1] = hllMaxRank + 1
	badPrec := append([]byte{}, valid...)
	badPrec[4] = 9
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE"),
		"truncated": valid[:100],
		"trailing":  append(append([]byte{}, valid...), 0),
		"bad rank":  overRank,
		"bad prec":  badPrec,
	}
	for name, b := range cases {
		if _, err := DecodeDistinct(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

func BenchmarkDistinctAdd(b *testing.B) {
	d := NewDistinct()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.AddUint64(uint64(i))
	}
}

func BenchmarkDistinctEstimate(b *testing.B) {
	d := NewDistinct()
	for i := 0; i < 100000; i++ {
		d.AddUint64(uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Estimate()
	}
}
