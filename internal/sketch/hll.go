package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HLL geometry. Precision is fixed at 12: 4096 one-byte registers (4 KB)
// give a standard error of ~1.04/sqrt(4096) ≈ 1.6%, ample for the ~5%
// tolerance the cardinality figures document, and a fixed precision keeps
// every Distinct mergeable with every other.
const (
	hllPrecision = 12
	hllRegisters = 1 << hllPrecision
	// hllMaxRank is the largest storable rank: 64 hash bits minus the
	// precision bits leave 52 suffix bits, so ranks run 1..53.
	hllMaxRank = 64 - hllPrecision + 1
)

// fnvOffset is the FNV-1a 64-bit offset basis.
const fnvOffset = 0xcbf29ce484222325

// Distinct is a HyperLogLog distinct counter with fixed precision 12. Its
// state is a register-wise maximum, so Merge is exactly commutative,
// associative, and idempotent, and Estimate — a pure function of the
// registers evaluated in fixed order — is bit-identical across any merge
// order or shard split.
//
// Not safe for concurrent use.
type Distinct struct {
	regs [hllRegisters]uint8
}

// NewDistinct returns an empty distinct counter.
func NewDistinct() *Distinct { return &Distinct{} }

// Footprint returns the counter's approximate in-memory size in bytes; it
// never grows with observations.
func (d *Distinct) Footprint() int { return hllRegisters + 16 }

// AddHash records one element given an already well-mixed 64-bit hash.
// Callers with raw integers or strings should use AddUint64/AddString,
// which apply the package's mixers first.
func (d *Distinct) AddHash(h uint64) {
	idx := h >> (64 - hllPrecision)
	rank := uint8(bits.LeadingZeros64(h<<hllPrecision)) + 1
	if rank > hllMaxRank {
		rank = hllMaxRank
	}
	if rank > d.regs[idx] {
		d.regs[idx] = rank
	}
}

// AddUint64 records an integer element (e.g. a device ID), mixed through the
// splitmix64 finalizer so sequential IDs spread across registers.
func (d *Distinct) AddUint64(v uint64) { d.AddHash(mix64(v)) }

// AddString records a string element via FNV-1a plus a final mix.
func (d *Distinct) AddString(s string) { d.AddHash(mix64(fnv1a64(fnvOffset, s))) }

// AddKey records a composite (integer, string) element — the shape of an
// AP's (BSSID, ESSID) pair — hashing both parts into one identity.
func (d *Distinct) AddKey(num uint64, s string) {
	d.AddHash(mix64(fnv1a64(mix64(num)|1, s)))
}

// hllAlpha is the bias-correction constant for m = 4096 registers.
var hllAlpha = 0.7213 / (1 + 1.079/float64(hllRegisters))

// Estimate returns the estimated number of distinct elements observed, with
// HyperLogLog's linear-counting correction in the small range. There is no
// large-range correction: with 64-bit hashes, collisions are negligible at
// any cardinality this repository can reach.
func (d *Distinct) Estimate() float64 {
	var sum float64
	zeros := 0
	for _, r := range d.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	m := float64(hllRegisters)
	e := hllAlpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return e
}

// Count returns Estimate rounded to the nearest integer.
func (d *Distinct) Count() uint64 { return uint64(math.Round(d.Estimate())) }

// Merge folds o into d by register-wise maximum. Merging a sketch with
// itself (or any subset of what d has seen) leaves d unchanged.
func (d *Distinct) Merge(o *Distinct) {
	for i, r := range o.regs {
		if r > d.regs[i] {
			d.regs[i] = r
		}
	}
}

// Clone returns an independent copy.
func (d *Distinct) Clone() *Distinct {
	c := *d
	return &c
}

// skhMagic identifies a Distinct encoding (version 1).
const skhMagic = "SKH1"

// MarshalBinary encodes the counter deterministically: magic, the precision
// byte, then the raw register file.
func (d *Distinct) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, len(skhMagic)+1+hllRegisters)
	b = append(b, skhMagic...)
	b = append(b, hllPrecision)
	b = append(b, d.regs[:]...)
	return b, nil
}

// DecodeDistinct reconstructs a counter from MarshalBinary output. Corrupt
// or torn input yields an error wrapping ErrCorrupt; it never panics.
func DecodeDistinct(b []byte) (*Distinct, error) {
	if len(b) < len(skhMagic) || string(b[:len(skhMagic)]) != skhMagic {
		return nil, corruptf("hll magic missing")
	}
	b = b[len(skhMagic):]
	if len(b) < 1 {
		return nil, corruptf("hll precision missing")
	}
	if p := b[0]; p != hllPrecision {
		return nil, fmt.Errorf("%w: hll precision %d, want %d", ErrCorrupt, p, hllPrecision)
	}
	b = b[1:]
	if len(b) != hllRegisters {
		return nil, corruptf("hll register file %d bytes, want %d", len(b), hllRegisters)
	}
	d := NewDistinct()
	for i, r := range b {
		if r > hllMaxRank {
			return nil, corruptf("hll register %d holds rank %d, max %d", i, r, hllMaxRank)
		}
		d.regs[i] = r
	}
	return d, nil
}
