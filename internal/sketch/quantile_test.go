package sketch

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile mirrors stats.Quantile's linear-interpolation convention so
// the accuracy tests compare against the exact path's definition.
func exactQuantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// relErr is |got-want| scaled by want (absolute when want is tiny).
func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if math.Abs(want) < 1e-9 {
		return d
	}
	return d / math.Abs(want)
}

func TestQuantileAccuracy(t *testing.T) {
	cfg := DefaultQuantileConfig()
	for _, dist := range []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*2 + 2) }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 50 }},
		{"uniform-wide", func(r *rand.Rand) float64 { return r.Float64() * 1e6 }},
	} {
		t.Run(dist.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			q := NewQuantile(cfg)
			xs := make([]float64, 20000)
			for i := range xs {
				xs[i] = dist.gen(r)
				q.Add(xs[i])
			}
			sort.Float64s(xs)
			// The documented bound is ~RelAcc on the value axis; allow a
			// little interpolation slack on top.
			bound := 2*cfg.RelAcc + 1e-9
			for _, p := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
				got, want := q.Quantile(p), exactQuantile(xs, p)
				if e := relErr(got, want); e > bound && math.Abs(got-want) > cfg.Min {
					t.Errorf("q(%g) = %g, exact %g, rel err %.4f > %.4f", p, got, want, e, bound)
				}
			}
			var sum float64
			for _, x := range xs {
				sum += x
			}
			if e := relErr(q.Sum(), sum); e > bound {
				t.Errorf("Sum = %g, exact %g, rel err %.4f", q.Sum(), sum, e)
			}
			if e := relErr(q.Mean(), sum/float64(len(xs))); e > bound {
				t.Errorf("Mean = %g, exact %g, rel err %.4f", q.Mean(), sum/float64(len(xs)), e)
			}
		})
	}
}

func TestQuantileLowAndClamp(t *testing.T) {
	q := NewQuantile(DefaultQuantileConfig())
	for _, v := range []float64{0, -5, 1e-9, math.NaN(), math.Inf(-1)} {
		q.Add(v)
	}
	if q.LowCount() != 5 || q.Count() != 5 {
		t.Fatalf("low %d count %d, want 5/5", q.LowCount(), q.Count())
	}
	if got := q.Quantile(0.5); got != 0 {
		t.Fatalf("median of below-resolution values = %g, want 0", got)
	}
	q.Add(math.Inf(1)) // clamps to the top bin
	q.Add(1e300)
	if got := q.Quantile(1); got > 1.03e12 || got < 0.97e12 {
		t.Fatalf("overflow values should clamp near Max: got %g", got)
	}
	// Counts stay exact through clamping.
	if q.Count() != 7 {
		t.Fatalf("count %d, want 7", q.Count())
	}
}

func TestQuantileEmpty(t *testing.T) {
	q := NewQuantile(DefaultQuantileConfig())
	if q.Quantile(0.5) != 0 || q.Sum() != 0 || q.Mean() != 0 || q.Count() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	q.Each(func(v float64, n uint64) { t.Fatalf("Each on empty sketch yielded (%g, %d)", v, n) })
}

func TestQuantileEachCoversCount(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	q := NewQuantile(DefaultQuantileConfig())
	for i := 0; i < 5000; i++ {
		q.Add(r.ExpFloat64() * 10)
	}
	q.AddN(0, 17)
	var total uint64
	last := math.Inf(-1)
	q.Each(func(v float64, n uint64) {
		if v <= last {
			t.Fatalf("Each out of order: %g after %g", v, last)
		}
		last = v
		total += n
	})
	if total != q.Count() {
		t.Fatalf("Each covered %d of %d observations", total, q.Count())
	}
}

func TestQuantileRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	q := NewQuantile(DefaultQuantileConfig())
	for i := 0; i < 10000; i++ {
		q.Add(math.Exp(r.NormFloat64() * 3))
	}
	q.AddN(0, 3)
	b, err := q.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuantile(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("decode/re-encode changed bytes")
	}
	if got.Count() != q.Count() || got.Quantile(0.9) != q.Quantile(0.9) {
		t.Fatal("round trip changed state")
	}
	// Determinism: identical state must serialize identically.
	b3, _ := q.Clone().MarshalBinary()
	if !bytes.Equal(b, b3) {
		t.Fatal("clone serialized differently")
	}
}

func TestQuantileDecodeRejectsCorrupt(t *testing.T) {
	q := NewQuantile(DefaultQuantileConfig())
	q.Add(5)
	valid, _ := q.MarshalBinary()
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("NOPE"),
		"truncated":  valid[:len(valid)-1],
		"trailing":   append(append([]byte{}, valid...), 0),
		"cfg nan":    append([]byte(skqMagic), bytes.Repeat([]byte{0xff}, 24)...),
		"torn float": []byte(skqMagic + "\x00\x01"),
	}
	for name, b := range cases {
		if _, err := DecodeQuantile(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

// TestQuantileDecodeRejectsOverflowDelta pins the never-panic contract
// against bin-delta varints >= 2^63, which wrap negative under int64
// conversion and once indexed bins[] below zero — both on the first run
// (absolute index) and on later runs (cumulative index).
func TestQuantileDecodeRejectsOverflowDelta(t *testing.T) {
	cfg := DefaultQuantileConfig()
	header := []byte(skqMagic)
	header = appendFloat(header, cfg.RelAcc)
	header = appendFloat(header, cfg.Min)
	header = appendFloat(header, cfg.Max)
	header = appendUvarint(header, 0) // low

	firstRun := appendUvarint(append([]byte{}, header...), 1)
	firstRun = appendUvarint(firstRun, 1<<63) // delta wraps int64 negative
	firstRun = appendUvarint(firstRun, 1)

	laterRun := appendUvarint(append([]byte{}, header...), 2)
	laterRun = appendUvarint(laterRun, 1) // valid first run at bin 1
	laterRun = appendUvarint(laterRun, 1)
	laterRun = appendUvarint(laterRun, math.MaxUint64) // second delta overflows
	laterRun = appendUvarint(laterRun, 1)

	for name, b := range map[string][]byte{"first run": firstRun, "later run": laterRun} {
		if _, err := DecodeQuantile(b); err == nil {
			t.Errorf("%s: decode accepted overflowing bin delta", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

// TestQuantileAddInfTopBin pins the documented above-Max behavior for +Inf
// alone: the log-bin index computation would convert int(+Inf) to the
// minimum int64 and once mis-reported an infinite observation as ~Min.
func TestQuantileAddInfTopBin(t *testing.T) {
	q := NewQuantile(DefaultQuantileConfig())
	q.Add(math.Inf(1))
	if q.LowCount() != 0 {
		t.Fatalf("+Inf landed in the low bucket (low=%d)", q.LowCount())
	}
	if got := q.Quantile(0.5); got < 0.97e12 {
		t.Fatalf("median of a lone +Inf = %g, want ~Max (top bin)", got)
	}
}

func TestQuantileMergeConfigMismatch(t *testing.T) {
	a := NewQuantile(DefaultQuantileConfig())
	b := NewQuantile(QuantileConfig{RelAcc: 0.05, Min: 1e-3, Max: 1e12})
	if err := a.Merge(b); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("merge across configs: err %v, want ErrConfigMismatch", err)
	}
}

func TestQuantileFootprintFixed(t *testing.T) {
	q := NewQuantile(DefaultQuantileConfig())
	before := q.Footprint()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		q.Add(math.Exp(r.NormFloat64() * 4))
	}
	if q.Footprint() != before {
		t.Fatalf("footprint grew %d -> %d under load", before, q.Footprint())
	}
	if before > 32<<10 {
		t.Fatalf("default config footprint %d bytes, want under 32 KiB", before)
	}
}

func BenchmarkQuantileAdd(b *testing.B) {
	q := NewQuantile(DefaultQuantileConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Add(float64(i%100000) + 0.5)
	}
}

func BenchmarkQuantileMerge(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := NewQuantile(DefaultQuantileConfig())
	y := NewQuantile(DefaultQuantileConfig())
	for i := 0; i < 100000; i++ {
		x.Add(r.ExpFloat64() * 100)
		y.Add(r.ExpFloat64() * 100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Merge(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantileQuery(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	q := NewQuantile(DefaultQuantileConfig())
	for i := 0; i < 100000; i++ {
		q.Add(r.ExpFloat64() * 100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Quantile(0.9)
	}
}
