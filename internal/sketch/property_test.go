package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// These property tests pin the merge algebra the ShardedAnalyzer contract
// leans on: for any random shard split (1..16 shards) and any merge order,
// the folded sketch is BIT-IDENTICAL (compared through its deterministic
// serialization) to a single-shard build over the same observations. That is
// deliberately stronger than the documented tolerance — integer-only state
// makes merge exactly commutative and associative, and the equivalence suite
// in internal/analysis exploits it with DeepEqual across worker counts.

func quantileValues(r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch r.Intn(10) {
		case 0:
			xs[i] = 0 // below-resolution bucket
		case 1:
			xs[i] = r.Float64() * 1e9 // huge
		default:
			xs[i] = math.Exp(r.NormFloat64()*2 + 1)
		}
	}
	return xs
}

func TestQuantileMergeAlgebra(t *testing.T) {
	cfg := DefaultQuantileConfig()
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		xs := quantileValues(r, 3000)

		whole := NewQuantile(cfg)
		for _, x := range xs {
			whole.Add(x)
		}
		want, _ := whole.MarshalBinary()

		for shards := 1; shards <= 16; shards++ {
			parts := make([]*Quantile, shards)
			for i := range parts {
				parts[i] = NewQuantile(cfg)
			}
			for _, x := range xs {
				parts[r.Intn(shards)].Add(x)
			}
			// Merge in a random order into a random starting shard.
			order := r.Perm(shards)
			acc := parts[order[0]]
			for _, i := range order[1:] {
				if err := acc.Merge(parts[i]); err != nil {
					t.Fatal(err)
				}
			}
			got, _ := acc.MarshalBinary()
			if !bytes.Equal(want, got) {
				t.Fatalf("seed %d shards %d: merged state differs from single build", seed, shards)
			}
		}
	}
}

func TestQuantileMergeCommutes(t *testing.T) {
	cfg := DefaultQuantileConfig()
	r := rand.New(rand.NewSource(99))
	a, b := NewQuantile(cfg), NewQuantile(cfg)
	for i := 0; i < 2000; i++ {
		a.Add(r.ExpFloat64() * 10)
		b.Add(r.ExpFloat64() * 1000)
	}
	ab := a.Clone()
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := b.Clone()
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	x, _ := ab.MarshalBinary()
	y, _ := ba.MarshalBinary()
	if !bytes.Equal(x, y) {
		t.Fatal("a+b != b+a")
	}
}

// TestQuantileSelfMergeQuantiles pins the result-level idempotence of the
// quantile sketch: doubling every count (merging a clone of itself) scales
// the histogram but leaves every quantile unchanged, because quantiles
// depend only on relative ranks.
func TestQuantileSelfMergeQuantiles(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	q := NewQuantile(DefaultQuantileConfig())
	for i := 0; i < 5000; i++ {
		q.Add(math.Exp(r.NormFloat64() * 3))
	}
	doubled := q.Clone()
	if err := doubled.Merge(q.Clone()); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		a, b := q.Quantile(p), doubled.Quantile(p)
		// Ranks interleave identical values, so interpolation never crosses
		// more than one bin boundary.
		if relErr(b, a) > 2*q.Config().RelAcc {
			t.Errorf("q(%g): %g before self-merge, %g after", p, a, b)
		}
	}
	if doubled.Mean() != q.Mean() {
		t.Errorf("mean changed under self-merge: %g -> %g", q.Mean(), doubled.Mean())
	}
}

func TestDistinctMergeAlgebra(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1000 + r.Intn(20000)

		whole := NewDistinct()
		for i := 0; i < n; i++ {
			whole.AddUint64(uint64(i))
		}
		want, _ := whole.MarshalBinary()

		for shards := 1; shards <= 16; shards++ {
			parts := make([]*Distinct, shards)
			for i := range parts {
				parts[i] = NewDistinct()
			}
			for i := 0; i < n; i++ {
				// Overlapping shards: distinct counting must absorb
				// duplicates across shards, unlike the quantile sketch's
				// disjoint split.
				parts[r.Intn(shards)].AddUint64(uint64(i))
				if r.Intn(4) == 0 {
					parts[r.Intn(shards)].AddUint64(uint64(i))
				}
			}
			order := r.Perm(shards)
			acc := parts[order[0]]
			for _, i := range order[1:] {
				acc.Merge(parts[i])
			}
			got, _ := acc.MarshalBinary()
			if !bytes.Equal(want, got) {
				t.Fatalf("seed %d shards %d: merged registers differ from single build", seed, shards)
			}
		}
	}
}
