// Package sketch provides the mergeable bounded-memory sketches behind the
// analysis pipeline's SketchMode: a log-binned quantile sketch (Quantile, a
// DDSketch-style relative-accuracy histogram) for every CDF figure and an
// HLL-style distinct counter (Distinct) for AP/device cardinalities.
//
// Both sketches are built for the ShardedAnalyzer merge contract and for the
// repository's determinism culture:
//
//   - Memory is bounded by construction: a Quantile's bin array is fixed by
//     its config, a Distinct's register file by its precision. Observing 10x
//     more samples does not grow either by a byte (pinned by the alloc
//     ceilings in internal/analysis/alloc_test.go).
//   - Merge is EXACTLY order-insensitive, not just "up to tolerance":
//     Quantile state is integer bin counts (merge = vector addition) and
//     Distinct state is a register-wise maximum, so any merge order — and any
//     shard split — yields bit-identical state. Both keep no floating-point
//     accumulators, which is what makes the sketch-path parallel-equivalence
//     tests able to assert DeepEqual across merge orders.
//   - Serialization (MarshalBinary/Decode*) is a pure function of state, so
//     identical sketches produce identical bytes; decoders validate
//     exhaustively and return errors — never panic — on torn or corrupt
//     input (fuzzed by FuzzSketchDecode/FuzzHLLDecode).
//
// Accuracy model: a Quantile answers any quantile with relative error at
// most its configured RelAcc on the value axis (plus an absolute floor of
// Min for values below resolution); a Distinct estimates cardinality within
// ~1.04/sqrt(2^precision) standard error (~1.6% at the default precision
// 12). DESIGN.md "Sketch-based analysis" maps these bounds to per-figure
// tolerances.
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Decode errors. Decoders wrap these (or return fmt.Errorf-constructed
// errors) for any input that is not a valid encoding; they never panic.
var (
	// ErrCorrupt marks an encoding whose structure is invalid: bad magic,
	// truncated fields, out-of-range indices or counts, trailing bytes.
	ErrCorrupt = errors.New("sketch: corrupt encoding")
	// ErrConfigMismatch is returned by Merge when the two sketches were
	// built with different configurations and their state is therefore not
	// commensurable.
	ErrConfigMismatch = errors.New("sketch: config mismatch")
)

// corruptf builds an ErrCorrupt-wrapped error with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// appendUvarint appends the unsigned varint encoding of v.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// readUvarint consumes one unsigned varint from b, returning the value and
// the remaining bytes. Only the minimal encoding is accepted — a padded
// varint (e.g. 0x80 0x00 for zero) would decode to state that re-encodes
// to different bytes, breaking the decode/encode identity the fuzz targets
// assert.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, corruptf("truncated varint")
	}
	if n > 1 && b[n-1] == 0 {
		return 0, nil, corruptf("non-minimal varint")
	}
	return v, b[n:], nil
}

// appendFloat appends the IEEE-754 bits of f, big-endian.
func appendFloat(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

// readFloat consumes one float64 from b.
func readFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, corruptf("truncated float")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
// It is the same finalizer the analysis engine's shardOf uses, so
// sequentially assigned device IDs spread evenly across HLL registers.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// fnv1a64 seeds string hashing: FNV-1a over s folded into h.
func fnv1a64(h uint64, s string) uint64 {
	const prime = 1099511628211
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
