package sketch

import (
	"fmt"
	"math"
)

// QuantileConfig fixes a Quantile's value domain and accuracy. Two sketches
// merge only when their configs are bitwise identical.
type QuantileConfig struct {
	// RelAcc is the target relative accuracy on the value axis: any
	// reported quantile lies within a factor (1 ± ~RelAcc) of the true
	// one. Must be in (0, 1).
	RelAcc float64
	// [Min, Max] is the representable value range. Values below Min
	// (including zero and negatives) are counted in a dedicated
	// below-resolution bucket and reported as 0 — an absolute error floor
	// of Min. Values above Max clamp into the top bin.
	Min, Max float64
}

// DefaultQuantileConfig covers every figure in this repository: 1% relative
// accuracy over [1e-3, 1e12], which spans 0.001 MB (1 KB) user-days up to
// terabyte outliers and sub-minute association runs up to centuries, in
// ~1.7k bins (~14 KB).
func DefaultQuantileConfig() QuantileConfig {
	return QuantileConfig{RelAcc: 0.01, Min: 1e-3, Max: 1e12}
}

// maxQuantileBins caps the bin count a config (or a decoded encoding) may
// demand, against hostile or corrupt inputs.
const maxQuantileBins = 1 << 20

// gamma returns the log-bin base (1+a)/(1-a): consecutive bin boundaries
// differ by a factor gamma, so the geometric bin midpoint is within ~RelAcc
// of every value in the bin.
func (c QuantileConfig) gamma() float64 { return (1 + c.RelAcc) / (1 - c.RelAcc) }

// bins returns the dense bin count covering [Min, Max].
func (c QuantileConfig) bins() int {
	return int(math.Log(c.Max/c.Min)/math.Log(c.gamma())) + 1
}

// validate rejects configs that are non-finite, out of range, or demand an
// unbounded bin array.
func (c QuantileConfig) validate() error {
	if !(c.RelAcc > 0 && c.RelAcc < 1) {
		return fmt.Errorf("sketch: RelAcc %g outside (0, 1)", c.RelAcc)
	}
	if !(c.Min > 0 && c.Max > c.Min) || math.IsInf(c.Max, 0) {
		return fmt.Errorf("sketch: value range [%g, %g] invalid", c.Min, c.Max)
	}
	// Bin-count sanity must stay in floats: a denormal RelAcc rounds gamma
	// to exactly 1, Log(gamma) to 0, and the bin count to +Inf, which an int
	// conversion wraps to garbage before any integer comparison could fire.
	logG := math.Log(c.gamma())
	if !(logG > 0) {
		return fmt.Errorf("sketch: RelAcc %g below float resolution", c.RelAcc)
	}
	if n := math.Log(c.Max/c.Min)/logG + 1; !(n <= maxQuantileBins) {
		return fmt.Errorf("sketch: config demands %.0f bins, cap %d", n, maxQuantileBins)
	}
	return nil
}

// Quantile is a DDSketch-style log-binned quantile sketch: a dense array of
// integer counts over geometrically spaced bins. Memory is fixed by the
// config; Add is O(1); Merge is bin-wise addition and therefore exactly
// commutative and associative. All derived statistics (quantiles, Sum, Mean)
// are pure functions of the integer state, computed in fixed bin order, so
// they are bit-identical across any merge order or shard split.
//
// Not safe for concurrent use.
type Quantile struct {
	cfg     QuantileConfig
	invLogG float64 // 1 / ln(gamma), the indexing constant
	logG    float64 // ln(gamma)

	bins  []uint64
	low   uint64 // observations below cfg.Min (reported as value 0)
	count uint64 // total observations, including low
}

// NewQuantile returns an empty sketch. It panics on an invalid config —
// configs are compile-time constants, so a bad one is programmer error
// (DecodeQuantile, which faces untrusted bytes, returns errors instead).
func NewQuantile(cfg QuantileConfig) *Quantile {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	logG := math.Log(cfg.gamma())
	return &Quantile{
		cfg:     cfg,
		invLogG: 1 / logG,
		logG:    logG,
		bins:    make([]uint64, cfg.bins()),
	}
}

// Config returns the sketch's configuration.
func (q *Quantile) Config() QuantileConfig { return q.cfg }

// Count returns the number of observations, including below-resolution ones.
func (q *Quantile) Count() uint64 { return q.count }

// LowCount returns the number of below-resolution observations (< Min).
func (q *Quantile) LowCount() uint64 { return q.low }

// Footprint returns the sketch's approximate in-memory size in bytes. It is
// a function of the config alone — observing more samples never grows it.
func (q *Quantile) Footprint() int { return len(q.bins)*8 + 96 }

// Add records one observation.
func (q *Quantile) Add(v float64) { q.AddN(v, 1) }

// AddN records n identical observations.
func (q *Quantile) AddN(v float64, n uint64) {
	if n == 0 {
		return
	}
	q.count += n
	// The negated comparison also routes NaN to the low bucket.
	if !(v >= q.cfg.Min) {
		q.low += n
		return
	}
	// +Inf is a value above Max and must clamp into the top bin; the log
	// indexing below would instead convert int(+Inf) to the minimum int64
	// and mis-route it to bin 0 via the i < 0 clamp.
	if math.IsInf(v, 1) {
		q.bins[len(q.bins)-1] += n
		return
	}
	i := int(math.Log(v/q.cfg.Min) * q.invLogG)
	if i >= len(q.bins) {
		i = len(q.bins) - 1
	}
	if i < 0 {
		i = 0
	}
	q.bins[i] += n
}

// binValue returns the geometric midpoint of bin i, the value every
// observation in the bin is reported as.
func (q *Quantile) binValue(i int) float64 {
	return q.cfg.Min * math.Exp((float64(i)+0.5)*q.logG)
}

// valueAtRank returns the reported value of the r-th smallest observation
// (0-based), counting the low bucket (value 0) first.
func (q *Quantile) valueAtRank(r uint64) float64 {
	if r < q.low {
		return 0
	}
	r -= q.low
	var cum uint64
	for i, n := range q.bins {
		cum += n
		if r < cum {
			return q.binValue(i)
		}
	}
	// r beyond the last observation: the maximum bin's value.
	for i := len(q.bins) - 1; i >= 0; i-- {
		if q.bins[i] > 0 {
			return q.binValue(i)
		}
	}
	return 0
}

// Quantile returns the p-th quantile (0 <= p <= 1) under the same
// linear-interpolation-between-closest-ranks convention as stats.Quantile,
// with every observation reported at its bin midpoint. The result is within
// a relative factor ~RelAcc of the exact sample quantile (absolute error at
// most Min below resolution). An empty sketch reports 0.
func (q *Quantile) Quantile(p float64) float64 {
	if q.count == 0 {
		return 0
	}
	if p <= 0 {
		return q.valueAtRank(0)
	}
	if p >= 1 {
		return q.valueAtRank(q.count - 1)
	}
	pos := p * float64(q.count-1)
	lo := uint64(pos)
	frac := pos - float64(lo)
	vlo := q.valueAtRank(lo)
	if frac == 0 {
		return vlo
	}
	vhi := q.valueAtRank(lo + 1)
	return vlo*(1-frac) + vhi*frac
}

// Sum returns the approximate sum of all observations: bin counts times bin
// midpoints, accumulated in fixed bin order (low-bucket observations
// contribute 0). Relative error is bounded by ~RelAcc plus Min per
// below-resolution observation.
func (q *Quantile) Sum() float64 {
	var sum float64
	for i, n := range q.bins {
		if n > 0 {
			sum += float64(n) * q.binValue(i)
		}
	}
	return sum
}

// Mean returns Sum divided by Count, or 0 for an empty sketch.
func (q *Quantile) Mean() float64 {
	if q.count == 0 {
		return 0
	}
	return q.Sum() / float64(q.count)
}

// Each calls fn for every non-empty bucket in ascending value order: the
// low bucket first (as value 0), then bin midpoints. The total of the
// counts passed equals Count.
func (q *Quantile) Each(fn func(value float64, n uint64)) {
	if q.low > 0 {
		fn(0, q.low)
	}
	for i, n := range q.bins {
		if n > 0 {
			fn(q.binValue(i), n)
		}
	}
}

// Merge folds o into q: bin-wise integer addition, exactly commutative and
// associative. It fails with ErrConfigMismatch when the configs differ; o is
// unchanged either way.
func (q *Quantile) Merge(o *Quantile) error {
	if q.cfg != o.cfg || len(q.bins) != len(o.bins) {
		return ErrConfigMismatch
	}
	q.low += o.low
	q.count += o.count
	for i, n := range o.bins {
		q.bins[i] += n
	}
	return nil
}

// Clone returns an independent deep copy.
func (q *Quantile) Clone() *Quantile {
	c := *q
	c.bins = make([]uint64, len(q.bins))
	copy(c.bins, q.bins)
	return &c
}

// skqMagic identifies a Quantile encoding (version 1).
const skqMagic = "SKQ1"

// MarshalBinary encodes the sketch deterministically: magic, the three
// config floats, the low count, then the non-empty bins as
// (index-delta, count) varint runs. Identical state yields identical bytes.
func (q *Quantile) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 64)
	b = append(b, skqMagic...)
	b = appendFloat(b, q.cfg.RelAcc)
	b = appendFloat(b, q.cfg.Min)
	b = appendFloat(b, q.cfg.Max)
	b = appendUvarint(b, q.low)
	var runs uint64
	for _, n := range q.bins {
		if n > 0 {
			runs++
		}
	}
	b = appendUvarint(b, runs)
	prev := 0
	first := true
	for i, n := range q.bins {
		if n == 0 {
			continue
		}
		delta := uint64(i - prev)
		if first {
			delta = uint64(i)
			first = false
		}
		b = appendUvarint(b, delta)
		b = appendUvarint(b, n)
		prev = i
	}
	return b, nil
}

// DecodeQuantile reconstructs a sketch from MarshalBinary output. Corrupt or
// torn input yields an error wrapping ErrCorrupt; it never panics.
func DecodeQuantile(b []byte) (*Quantile, error) {
	if len(b) < len(skqMagic) || string(b[:len(skqMagic)]) != skqMagic {
		return nil, corruptf("quantile magic missing")
	}
	b = b[len(skqMagic):]
	var cfg QuantileConfig
	var err error
	if cfg.RelAcc, b, err = readFloat(b); err != nil {
		return nil, err
	}
	if cfg.Min, b, err = readFloat(b); err != nil {
		return nil, err
	}
	if cfg.Max, b, err = readFloat(b); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	q := NewQuantile(cfg)
	var low, runs uint64
	if low, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if runs, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if runs > uint64(len(q.bins)) {
		return nil, corruptf("%d bin runs exceed %d bins", runs, len(q.bins))
	}
	q.low = low
	q.count = low
	idx := -1
	for r := uint64(0); r < runs; r++ {
		var delta, n uint64
		if delta, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if n, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, corruptf("empty bin run")
		}
		if r > 0 && delta == 0 {
			return nil, corruptf("non-increasing bin index")
		}
		// Bound the delta before any signed conversion: a varint >= 2^63
		// would wrap int64(delta) negative and index bins below zero.
		if delta >= uint64(len(q.bins)) {
			return nil, corruptf("bin index delta %d exceeds %d bins", delta, len(q.bins))
		}
		next := int64(idx) + int64(delta)
		if r == 0 {
			next = int64(delta)
		}
		if next >= int64(len(q.bins)) {
			return nil, corruptf("bin index %d exceeds %d bins", next, len(q.bins))
		}
		idx = int(next)
		q.bins[idx] = n
		q.count += n
	}
	if len(b) != 0 {
		return nil, corruptf("%d trailing bytes", len(b))
	}
	return q, nil
}
