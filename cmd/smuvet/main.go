// Command smuvet is the repo's domain-specific multichecker: it loads the
// packages named by its arguments (default ./...) and runs the four
// invariant analyzers — determinism, shardmerge, guardedby, closeerr — over
// them, printing vet-style file:line:col diagnostics.
//
// Usage:
//
//	smuvet [-json] [-list] [packages...]
//
// Exit status is 0 when the tree is clean, 1 when any diagnostic is
// reported, and 2 when loading or type-checking fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"smartusage/internal/smuvet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (per package, per analyzer)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: smuvet [-json] [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range smuvet.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range smuvet.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns, *jsonOut))
}

// jsonDiag is one diagnostic in -json output, keyed like `go vet -json`:
// {"pkgpath": {"analyzer": [{posn, message}]}}.
type jsonDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

func run(patterns []string, jsonOut bool) int {
	pkgs, err := smuvet.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	analyzers := smuvet.All()
	status := 0
	byPkg := make(map[string]map[string][]jsonDiag)
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.PkgPath, e)
			}
			status = 2
			continue
		}
		diags, err := smuvet.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		for _, d := range diags {
			if status == 0 {
				status = 1
			}
			posn := pkg.Fset.Position(d.Pos)
			if jsonOut {
				m := byPkg[pkg.PkgPath]
				if m == nil {
					m = make(map[string][]jsonDiag)
					byPkg[pkg.PkgPath] = m
				}
				m[d.Analyzer] = append(m[d.Analyzer], jsonDiag{
					Posn:    posn.String(),
					Message: d.Message,
				})
			} else {
				fmt.Printf("%s: %s: %s\n", posn, d.Analyzer, d.Message)
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		// Deterministic order: marshal a sorted view.
		paths := make([]string, 0, len(byPkg))
		for p := range byPkg {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		out := make(map[string]map[string][]jsonDiag, len(byPkg))
		for _, p := range paths {
			out[p] = byPkg[p]
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	return status
}
