// Command smuvet is the repo's domain-specific multichecker: it loads the
// packages named by its arguments (default ./...) and runs the eight
// invariant analyzers — aliasret, closeerr, commitpair, determinism,
// guardedby, lockorder, poollife, shardmerge — over them, printing vet-style
// file:line:col diagnostics.
//
// Usage:
//
//	smuvet [-json] [-sarif] [-list] [packages...]
//
// -json emits diagnostics keyed by package and analyzer; the encoding sorts
// every map, so identical trees produce identical bytes (CI diffs two runs).
// -sarif emits a SARIF 2.1.0 log for code-scanning upload. Exit status is 0
// when the tree is clean, 1 when any diagnostic is reported, and 2 when
// loading or type-checking fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"smartusage/internal/smuvet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (per package, per analyzer)")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: smuvet [-json] [-sarif] [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range smuvet.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range smuvet.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "smuvet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	mode := modeText
	if *jsonOut {
		mode = modeJSON
	}
	if *sarifOut {
		mode = modeSARIF
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns, mode))
}

const (
	modeText = iota
	modeJSON
	modeSARIF
)

// jsonDiag is one diagnostic in -json output, keyed like `go vet -json`:
// {"pkgpath": {"analyzer": [{posn, message}]}}.
type jsonDiag struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// flatDiag is one diagnostic with its position resolved, for SARIF output.
type flatDiag struct {
	analyzer string
	file     string
	line     int
	col      int
	message  string
}

func run(patterns []string, mode int) int {
	pkgs, err := smuvet.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	analyzers := smuvet.All()
	status := 0
	byPkg := make(map[string]map[string][]jsonDiag)
	var flat []flatDiag
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.PkgPath, e)
			}
			status = 2
			continue
		}
		diags, err := smuvet.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		for _, d := range diags {
			if status == 0 {
				status = 1
			}
			posn := pkg.Fset.Position(d.Pos)
			switch mode {
			case modeJSON:
				m := byPkg[pkg.PkgPath]
				if m == nil {
					m = make(map[string][]jsonDiag)
					byPkg[pkg.PkgPath] = m
				}
				m[d.Analyzer] = append(m[d.Analyzer], jsonDiag{
					Posn:    posn.String(),
					Message: d.Message,
				})
			case modeSARIF:
				flat = append(flat, flatDiag{
					analyzer: d.Analyzer,
					file:     relPath(posn.Filename),
					line:     posn.Line,
					col:      posn.Column,
					message:  d.Message,
				})
			default:
				fmt.Printf("%s: %s: %s\n", posn, d.Analyzer, d.Message)
			}
		}
	}
	switch mode {
	case modeJSON:
		// encoding/json sorts map keys, so this output is byte-stable for
		// identical trees; CI diffs two runs to prove it.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(byPkg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	case modeSARIF:
		if err := writeSARIF(os.Stdout, flat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	return status
}

// relPath makes file relative to the working directory so SARIF artifact
// URIs resolve against the repository root wherever the log is consumed.
func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// SARIF 2.1.0 output, the subset code-scanning consumers need. Structs
// rather than nested maps so the field set is visible and stable.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(w *os.File, diags []flatDiag) error {
	rules := make([]sarifRule, 0, len(smuvet.All())+2)
	for _, a := range smuvet.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	// The two pseudo-analyzers diagnose the suppression grammar itself.
	rules = append(rules,
		sarifRule{ID: "allow", ShortDescription: sarifText{Text: "malformed //smuvet:allow comment"}},
		sarifRule{ID: "stale", ShortDescription: sarifText{Text: "//smuvet:allow comment that suppressed no diagnostic in this run"}},
	)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.file, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.line, StartColumn: d.col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "smuvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}
