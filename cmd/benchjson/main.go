// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark manifest: one object keyed by
// "<package>.<Benchmark>" mapping to ns/op, B/op, and allocs/op. CI runs it
// after the benchmark smoke pass and publishes the result (BENCH_5.json) as
// an artifact, so the perf trajectory of a branch is one download away
// instead of buried in a log.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x -benchmem ./... | benchjson -o BENCH_5.json
package main

import (
	"bufio"
	"flag"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin (did the bench pass run with -bench?)")
	}
	b := marshal(results)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if _, err := w.Write(b); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d benchmarks", len(results))
}
