// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark manifest: one object keyed by
// "<package>.<Benchmark>" mapping to ns/op, B/op, and allocs/op. CI runs it
// after the benchmark smoke pass and publishes the result (BENCH_7.json) as
// an artifact, so the perf trajectory of a branch is one download away
// instead of buried in a log.
//
// With -diff it additionally compares the run against a committed manifest
// (benchstat-style old/new/delta table) and exits non-zero when any metric
// regresses beyond its tolerance, which is how CI gates performance: loose
// on wall-clock (noisy at -benchtime=1x on shared runners, and not judged
// at all below -min-ns), tight on bytes/op and allocs/op (deterministic).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x -benchmem ./... | benchjson -o BENCH_7.json
//	go test -run '^$' -bench . -benchtime=1x -benchmem ./... | benchjson -diff BENCH_7.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	tol := DefaultTolerances()
	out := flag.String("o", "", "output file (default stdout; suppressed in -diff mode unless set)")
	diffPath := flag.String("diff", "", "baseline manifest to compare against; regressions exit 1")
	flag.Float64Var(&tol.NsFrac, "tol-ns", tol.NsFrac, "allowed fractional ns/op growth")
	flag.Float64Var(&tol.NsFloor, "min-ns", tol.NsFloor, "ns/op below this baseline is not judged")
	flag.Float64Var(&tol.BytesFrac, "tol-bytes", tol.BytesFrac, "allowed fractional bytes/op growth")
	flag.Float64Var(&tol.AllocsFrac, "tol-allocs", tol.AllocsFrac, "allowed fractional allocs/op growth")
	flag.Parse()

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin (did the bench pass run with -bench?)")
	}
	b := marshal(results)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	} else if *diffPath == "" {
		if _, err := os.Stdout.Write(b); err != nil {
			log.Fatal(err)
		}
	}

	if *diffPath != "" {
		old, err := loadManifest(*diffPath)
		if err != nil {
			log.Fatal(err)
		}
		report, regs := diff(old, results, tol)
		fmt.Print(report)
		if len(regs) > 0 {
			log.Fatalf("%d metric(s) regressed beyond tolerance vs %s", len(regs), *diffPath)
		}
	}
	log.Printf("%d benchmarks", len(results))
}
