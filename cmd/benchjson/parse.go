package main

import (
	"bufio"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. A value of -1 means the metric was
// absent from the line (B/op and allocs/op only appear under -benchmem).
type Result struct {
	Pkg      string  // import path, from the preceding "pkg:" header
	Name     string  // benchmark name, GOMAXPROCS suffix stripped
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
}

// parse reads `go test -bench` output and returns one Result per benchmark
// line, tagged with the package from the most recent "pkg:" header.
func parse(sc *bufio.Scanner) ([]Result, error) {
	var (
		results []Result
		pkg     string
	)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name-N iterations value unit [value unit ...]
		if len(fields) < 4 {
			continue
		}
		r := Result{Pkg: pkg, Name: trimProcs(fields[0]), BPerOp: -1, AllocsOp: -1}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, err
				}
				r.NsPerOp = f
				seen = true
			case "B/op":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, err
				}
				r.BPerOp = n
			case "allocs/op":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, err
				}
				r.AllocsOp = n
			}
		}
		if seen {
			results = append(results, r)
		}
	}
	return results, sc.Err()
}

// trimProcs strips the -GOMAXPROCS suffix (BenchmarkX-8 → BenchmarkX) so
// keys stay stable across machines with different core counts.
func trimProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// marshal renders the manifest deterministically: keys sorted, one
// benchmark per line, trailing newline. Hand-rolled for the same reason as
// obs.Snapshot.MarshalJSON — byte-stable output diffs cleanly between runs.
func marshal(results []Result) []byte {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Pkg != results[j].Pkg {
			return results[i].Pkg < results[j].Pkg
		}
		return results[i].Name < results[j].Name
	})
	var b []byte
	b = append(b, "{\n"...)
	for i, r := range results {
		if i > 0 {
			b = append(b, ",\n"...)
		}
		b = append(b, "  "...)
		b = strconv.AppendQuote(b, r.Pkg+"."+r.Name)
		b = append(b, `: {"ns_per_op": `...)
		b = strconv.AppendFloat(b, r.NsPerOp, 'g', -1, 64)
		if r.BPerOp >= 0 {
			b = append(b, `, "bytes_per_op": `...)
			b = strconv.AppendInt(b, r.BPerOp, 10)
		}
		if r.AllocsOp >= 0 {
			b = append(b, `, "allocs_per_op": `...)
			b = strconv.AppendInt(b, r.AllocsOp, 10)
		}
		b = append(b, '}')
	}
	b = append(b, "\n}\n"...)
	return b
}
