package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Diff mode compares a fresh benchmark run (stdin) against a committed
// manifest, benchstat-style, and fails on regressions beyond per-metric
// tolerances. The tolerances are deliberately asymmetric with the metrics'
// noise profiles: wall-clock at -benchtime=1x jitters wildly on shared CI
// runners, so ns/op gets a loose relative gate and an absolute floor below
// which it is not judged at all; bytes/op and allocs/op are nearly
// deterministic, so they gate tightly and catch allocation regressions the
// timing gate would drown in noise.

// Tolerances configures the regression gate.
type Tolerances struct {
	// NsFrac is the allowed fractional ns/op growth (0.5 = +50%).
	NsFrac float64
	// NsFloor exempts benchmarks whose baseline ns/op is below it; timing
	// of sub-floor benchmarks is pure noise at -benchtime=1x.
	NsFloor float64
	// BytesFrac / AllocsFrac are the allowed fractional growths, each with
	// a small absolute slack so one-time pool or map warmup jitter on tiny
	// benchmarks does not trip the gate.
	BytesFrac   float64
	AllocsFrac  float64
	bytesSlack  int64
	allocsSlack int64
}

// DefaultTolerances matches the CI gate.
func DefaultTolerances() Tolerances {
	return Tolerances{
		NsFrac:      0.50,
		NsFloor:     1e6, // 1 ms
		BytesFrac:   0.10,
		AllocsFrac:  0.10,
		bytesSlack:  512,
		allocsSlack: 8,
	}
}

// manifestEntry mirrors one marshal() value; pointers distinguish absent
// metrics from zero.
type manifestEntry struct {
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   *int64  `json:"bytes_per_op"`
	AllocsOp *int64  `json:"allocs_per_op"`
}

// loadManifest reads a committed benchmark manifest.
func loadManifest(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries map[string]manifestEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Result, len(entries))
	for key, e := range entries {
		r := Result{NsPerOp: e.NsPerOp, BPerOp: -1, AllocsOp: -1}
		if e.BPerOp != nil {
			r.BPerOp = *e.BPerOp
		}
		if e.AllocsOp != nil {
			r.AllocsOp = *e.AllocsOp
		}
		out[key] = r
	}
	return out, nil
}

// regression is one metric exceeding its tolerance.
type regression struct {
	key, metric string
	old, new    float64
}

// diff compares new results against the old manifest. It returns a rendered
// report and the regressions found. New benchmarks (no baseline) and
// benchmarks that vanished from the run are reported but never fail: the
// former have nothing to regress from, and failing the latter would turn
// every benchmark rename into a red build instead of a stale-anchor review
// comment.
func diff(old map[string]Result, results []Result, tol Tolerances) (string, []regression) {
	var (
		b       strings.Builder
		regs    []regression
		fresh   []string
		changed int
	)
	seen := make(map[string]bool, len(results))
	fmt.Fprintf(&b, "%-52s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	row := func(key, metric string, oldV, newV float64, flag string) {
		delta := "n/a"
		if oldV > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(newV-oldV)/oldV)
		}
		fmt.Fprintf(&b, "%-52s %14.6g %14.6g %8s %s\n",
			key+" ["+metric+"]", oldV, newV, delta, flag)
	}
	keys := make([]string, 0, len(results))
	byKey := make(map[string]Result, len(results))
	for _, r := range results {
		key := r.Pkg + "." + r.Name
		keys = append(keys, key)
		byKey[key] = r
		seen[key] = true
	}
	sort.Strings(keys)
	for _, key := range keys {
		r := byKey[key]
		base, ok := old[key]
		if !ok {
			fresh = append(fresh, key)
			continue
		}
		type metric struct {
			name      string
			oldV, new float64
			frac      float64
			slack     float64
			floor     float64
		}
		metrics := []metric{
			{"ns/op", base.NsPerOp, r.NsPerOp, tol.NsFrac, 0, tol.NsFloor},
		}
		if base.BPerOp >= 0 && r.BPerOp >= 0 {
			metrics = append(metrics, metric{"B/op", float64(base.BPerOp), float64(r.BPerOp), tol.BytesFrac, float64(tol.bytesSlack), 0})
		}
		if base.AllocsOp >= 0 && r.AllocsOp >= 0 {
			metrics = append(metrics, metric{"allocs/op", float64(base.AllocsOp), float64(r.AllocsOp), tol.AllocsFrac, float64(tol.allocsSlack), 0})
		}
		for _, m := range metrics {
			if m.floor > 0 && m.oldV < m.floor && m.new < m.floor {
				continue
			}
			limit := m.oldV*(1+m.frac) + m.slack
			switch {
			case m.new > limit:
				regs = append(regs, regression{key: key, metric: m.name, old: m.oldV, new: m.new})
				row(key, m.name, m.oldV, m.new, "REGRESSION")
				changed++
			case m.oldV > 0 && m.new < m.oldV*(1-m.frac):
				row(key, m.name, m.oldV, m.new, "improved")
				changed++
			}
		}
	}
	if changed == 0 {
		fmt.Fprintf(&b, "%-52s no metric moved beyond tolerance\n", "(all benchmarks)")
	}
	for _, key := range fresh {
		fmt.Fprintf(&b, "%-52s (new benchmark, no baseline)\n", key)
	}
	var gone []string
	for key := range old {
		if !seen[key] {
			gone = append(gone, key)
		}
	}
	sort.Strings(gone)
	for _, key := range gone {
		fmt.Fprintf(&b, "%-52s (in baseline, absent from run — stale anchor?)\n", key)
	}
	fmt.Fprintf(&b, "compared %d benchmarks: %d regressions, %d new, %d missing\n",
		len(keys)-len(fresh), len(regs), len(fresh), len(gone))
	return b.String(), regs
}
