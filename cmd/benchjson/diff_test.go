package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mkResults is a sparse Result builder for diff tests.
func mkResults(rs ...Result) []Result { return rs }

func res(pkg, name string, ns float64, b, allocs int64) Result {
	return Result{Pkg: pkg, Name: name, NsPerOp: ns, BPerOp: b, AllocsOp: allocs}
}

func TestDiffRoundTripThroughManifest(t *testing.T) {
	results := mkResults(
		res("p", "BenchmarkA", 2e6, 1000, 50),
		res("p", "BenchmarkB", 80, -1, -1),
	)
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, marshal(results), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := old["p.BenchmarkA"]; got.NsPerOp != 2e6 || got.BPerOp != 1000 || got.AllocsOp != 50 {
		t.Fatalf("manifest round trip mangled A: %+v", got)
	}
	if got := old["p.BenchmarkB"]; got.BPerOp != -1 || got.AllocsOp != -1 {
		t.Fatalf("absent metrics must load as -1: %+v", got)
	}
	report, regs := diff(old, results, DefaultTolerances())
	if len(regs) != 0 {
		t.Fatalf("identical run regressed: %v\n%s", regs, report)
	}
}

func TestDiffCatchesRegressions(t *testing.T) {
	old := map[string]Result{
		"p.BenchmarkSlow":  {NsPerOp: 10e6, BPerOp: 100_000, AllocsOp: 1000},
		"p.BenchmarkMicro": {NsPerOp: 50, BPerOp: 64, AllocsOp: 2},
	}
	tol := DefaultTolerances()

	// ns/op regression beyond +50% on a benchmark above the floor.
	_, regs := diff(old, mkResults(res("p", "BenchmarkSlow", 16e6, 100_000, 1000)), tol)
	if len(regs) != 1 || regs[0].metric != "ns/op" {
		t.Fatalf("ns regression not caught: %v", regs)
	}

	// The same relative slowdown below the floor is noise, not a failure.
	_, regs = diff(old, mkResults(res("p", "BenchmarkMicro", 80, 64, 2)), tol)
	if len(regs) != 0 {
		t.Fatalf("sub-floor ns jitter failed the gate: %v", regs)
	}

	// Alloc growth beyond tolerance+slack fails even with flat timing.
	_, regs = diff(old, mkResults(res("p", "BenchmarkSlow", 10e6, 100_000, 1200)), tol)
	if len(regs) != 1 || regs[0].metric != "allocs/op" {
		t.Fatalf("alloc regression not caught: %v", regs)
	}

	// Byte growth beyond tolerance fails.
	_, regs = diff(old, mkResults(res("p", "BenchmarkSlow", 10e6, 120_000, 1000)), tol)
	if len(regs) != 1 || regs[0].metric != "B/op" {
		t.Fatalf("bytes regression not caught: %v", regs)
	}

	// Small absolute alloc jitter on tiny benchmarks passes (slack).
	_, regs = diff(old, mkResults(res("p", "BenchmarkMicro", 50, 64, 4)), tol)
	if len(regs) != 0 {
		t.Fatalf("slack did not absorb tiny alloc jitter: %v", regs)
	}
}

func TestDiffImprovementsAndNewBenchmarksPass(t *testing.T) {
	old := map[string]Result{
		"p.BenchmarkSlow": {NsPerOp: 10e6, BPerOp: 100_000, AllocsOp: 1000},
	}
	report, regs := diff(old, mkResults(
		res("p", "BenchmarkSlow", 4e6, 40_000, 300), // big improvement
		res("p", "BenchmarkFresh", 5e6, 10, 1),      // no baseline
	), DefaultTolerances())
	if len(regs) != 0 {
		t.Fatalf("improvement or new benchmark failed the gate: %v\n%s", regs, report)
	}
	if !strings.Contains(report, "improved") {
		t.Errorf("report does not flag the improvement:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkFresh") || !strings.Contains(report, "no baseline") {
		t.Errorf("report does not list the new benchmark:\n%s", report)
	}
}

func TestDiffReportsMissingWithoutFailing(t *testing.T) {
	old := map[string]Result{
		"p.BenchmarkGone": {NsPerOp: 1e6, BPerOp: 10, AllocsOp: 1},
		"p.BenchmarkKept": {NsPerOp: 1e6, BPerOp: 10, AllocsOp: 1},
	}
	report, regs := diff(old, mkResults(res("p", "BenchmarkKept", 1e6, 10, 1)), DefaultTolerances())
	if len(regs) != 0 {
		t.Fatalf("missing benchmark failed the gate: %v", regs)
	}
	if !strings.Contains(report, "BenchmarkGone") || !strings.Contains(report, "stale anchor") {
		t.Errorf("report does not flag the vanished benchmark:\n%s", report)
	}
}

// TestDiffAgainstParsedBenchOutput exercises the full stdin → parse → diff
// path the CI gate runs.
func TestDiffAgainstParsedBenchOutput(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader(sampleBenchOutput)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "anchor.json")
	if err := os.WriteFile(path, marshal(results), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, regs := diff(old, results, DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("self-diff regressed: %v", regs)
	}
}
