package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: smartusage/internal/obs
cpu: some cpu
BenchmarkCounterHot-8      	1	5.25 ns/op	0 B/op	0 allocs/op
BenchmarkSnapshotPrometheus-8	1	2100 ns/op	912 B/op	14 allocs/op
PASS
ok  	smartusage/internal/obs	0.01s
pkg: smartusage/internal/trace
BenchmarkEncode-8          	1	80 ns/op
PASS
ok  	smartusage/internal/trace	0.01s
`

func TestParse(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader(sampleBenchOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	hot := results[0]
	if hot.Pkg != "smartusage/internal/obs" || hot.Name != "BenchmarkCounterHot" {
		t.Errorf("first result misattributed: %+v", hot)
	}
	if hot.NsPerOp != 5.25 || hot.BPerOp != 0 || hot.AllocsOp != 0 {
		t.Errorf("BenchmarkCounterHot metrics wrong: %+v", hot)
	}
	enc := results[2]
	if enc.Pkg != "smartusage/internal/trace" || enc.NsPerOp != 80 {
		t.Errorf("pkg header did not switch: %+v", enc)
	}
	if enc.BPerOp != -1 || enc.AllocsOp != -1 {
		t.Errorf("absent -benchmem metrics should stay -1: %+v", enc)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader(sampleBenchOutput)))
	if err != nil {
		t.Fatal(err)
	}
	a := string(marshal(results))
	// Reversed input order must yield identical bytes.
	rev := make([]Result, len(results))
	for i, r := range results {
		rev[len(results)-1-i] = r
	}
	b := string(marshal(rev))
	if a != b {
		t.Errorf("marshal is input-order dependent:\n%s\nvs\n%s", a, b)
	}
	want := `{
  "smartusage/internal/obs.BenchmarkCounterHot": {"ns_per_op": 5.25, "bytes_per_op": 0, "allocs_per_op": 0},
  "smartusage/internal/obs.BenchmarkSnapshotPrometheus": {"ns_per_op": 2100, "bytes_per_op": 912, "allocs_per_op": 14},
  "smartusage/internal/trace.BenchmarkEncode": {"ns_per_op": 80}
}
`
	if a != want {
		t.Errorf("manifest drifted from golden.\ngot:\n%s\nwant:\n%s", a, want)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":      "BenchmarkX",
		"BenchmarkX-128":    "BenchmarkX",
		"BenchmarkX":        "BenchmarkX",
		"BenchmarkX-noproc": "BenchmarkX-noproc",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
