// Command agentsim replays a simulated campaign through real measurement
// agents: every simulated device runs an agent.Agent that uploads its
// samples to a collector over TCP, exercising the full §2 pipeline
// (sampling → batching → upload → cache-and-retry on failure).
//
// Run a collector first (cmd/collectd), then:
//
//	agentsim -server 127.0.0.1:7020 -year 2015 -scale 0.1 -faults dial=0.05,corrupt=0.01
//
// -faults injects deterministic network failures (see faultnet.ParseSpec
// for the spec grammar) to demonstrate the agent's retry/backoff policy and
// offline cache: every sample still arrives exactly once thanks to frame
// checksums, batch dedup, and the collector's resume bookkeeping.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"smartusage/internal/agent"
	"smartusage/internal/config"
	"smartusage/internal/faultnet"
	"smartusage/internal/obs"
	"smartusage/internal/sim"
	"smartusage/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("agentsim: ")
	var (
		server     = flag.String("server", "127.0.0.1:7020", "collector address (single-server mode)")
		servers    = flag.String("servers", "", "comma-separated collector tier addresses; agents pick a rendezvous primary per device and fail over between them (overrides -server)")
		year       = flag.Int("year", 2015, "campaign year")
		scale      = flag.Float64("scale", 0.1, "panel scale")
		seed       = flag.Int64("seed", 1, "random seed")
		token      = flag.String("token", "", "auth token")
		failrate   = flag.Float64("failrate", 0, "probability of injected dial failure (shorthand for -faults dial=P)")
		faults     = flag.String("faults", "", "fault spec, e.g. dial=0.1,reset=0.05,stall=0.02,ackloss=0.1,corrupt=0.01")
		attempts   = flag.Int("attempts", 4, "upload attempts per batch within one flush")
		backoff    = flag.Duration("backoff", 100*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
		maxBackoff = flag.Duration("max-backoff", 2*time.Second, "retry backoff cap")
		spoolDir   = flag.String("spool-dir", "", "journal each agent's upload queue under this directory (one subdir per device); a re-run resumes abandoned samples")
		traceOut   = flag.String("trace-out", "", "write stage spans (simulate, drain) as Chrome trace JSONL to this file")
		metricsOut = flag.String("metrics-out", "", "write a final Prometheus-text metrics snapshot to this file")
	)
	flag.Parse()

	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		tracer = obs.NewTracer(f)
		defer tracer.Close()
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}

	cfg, err := config.ForYear(*year, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	sm, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fcfg, err := faultnet.ParseSpec(*faults)
	if err != nil {
		log.Fatal(err)
	}
	if *failrate > 0 {
		fcfg.DialRefuse = *failrate
	}
	fcfg.Seed = *seed * 31
	fcfg.Metrics = reg
	inj := faultnet.New(fcfg)
	dial := inj.Dial(nil)

	var tier []string
	if *servers != "" {
		for _, s := range strings.Split(*servers, ",") {
			if s = strings.TrimSpace(s); s != "" {
				tier = append(tier, s)
			}
		}
	}

	agents := make(map[trace.DeviceID]*agent.Agent)
	var recorded, flushErrs int
	simSpan := tracer.Start("agentsim:simulate")
	err = sm.Run(func(s *trace.Sample) error {
		a := agents[s.Device]
		if a == nil {
			var err error
			acfg := agent.Config{
				Server:      *server,
				Servers:     tier,
				Device:      s.Device,
				OS:          s.OS,
				Token:       *token,
				MaxAttempts: *attempts,
				Backoff:     *backoff,
				MaxBackoff:  *maxBackoff,
				Dial:        dial,
				Metrics:     reg,
			}
			if *spoolDir != "" {
				acfg.SpoolDir = filepath.Join(*spoolDir, s.Device.String())
			}
			a, err = agent.New(acfg)
			if err != nil {
				return err
			}
			agents[s.Device] = a
		}
		a.Record(s)
		recorded++
		return nil
	})
	simSpan.End()
	if err != nil {
		log.Fatal(err)
	}

	drainSpan := tracer.Start("agentsim:drain")
	var uploaded, dropped, retries, resumed, abandoned, failovers, exhausted int
	for _, a := range agents {
		if err := a.Close(); err != nil {
			flushErrs++
			var ae *agent.AbandonedError
			if errors.As(err, &ae) {
				abandoned += ae.Count
			}
		}
		st := a.Stats()
		uploaded += st.Uploaded
		dropped += st.Dropped
		retries += st.Retries
		resumed += st.Resumed
		failovers += st.Failovers
		exhausted += st.TierExhausted
	}
	drainSpan.End()
	log.Printf("devices=%d recorded=%d resumed=%d uploaded=%d dropped=%d retries=%d close-errors=%d abandoned=%d",
		len(agents), recorded, resumed, uploaded, dropped, retries, flushErrs, abandoned)
	if len(tier) > 0 {
		log.Printf("tier: %d replicas, failovers=%d tier-exhausted=%d", len(tier), failovers, exhausted)
	}
	log.Printf("faults: %s", inj.Stats())
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			log.Fatal(err)
		}
	}
	if abandoned > 0 {
		// os.Exit skips defers; finish the trace file first.
		tracer.Close()
		fate := "lost"
		if *spoolDir != "" {
			fate = fmt.Sprintf("retained under %s; re-run to resume", *spoolDir)
		}
		log.Printf("exit 1: %d samples abandoned (%s)", abandoned, fate)
		os.Exit(1)
	}
}

// writeMetrics renders a final Prometheus-text snapshot of the registry.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WritePrometheus(f); err != nil {
		f.Close() //smuvet:allow closeerr -- write error is primary; the file is incomplete anyway
		return err
	}
	return f.Close()
}
