// Command agentsim replays a simulated campaign through real measurement
// agents: every simulated device runs an agent.Agent that uploads its
// samples to a collector over TCP, exercising the full §2 pipeline
// (sampling → batching → upload → cache-and-retry on failure).
//
// Run a collector first (cmd/collectd), then:
//
//	agentsim -server 127.0.0.1:7020 -year 2015 -scale 0.1 -failrate 0.05
//
// -failrate injects random dial failures to demonstrate the agent's offline
// cache: every sample still arrives exactly once thanks to batch dedup.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"smartusage/internal/agent"
	"smartusage/internal/config"
	"smartusage/internal/sim"
	"smartusage/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("agentsim: ")
	var (
		server   = flag.String("server", "127.0.0.1:7020", "collector address")
		year     = flag.Int("year", 2015, "campaign year")
		scale    = flag.Float64("scale", 0.1, "panel scale")
		seed     = flag.Int64("seed", 1, "random seed")
		token    = flag.String("token", "", "auth token")
		failrate = flag.Float64("failrate", 0, "probability of injected dial failure")
	)
	flag.Parse()

	cfg, err := config.ForYear(*year, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	sm, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	faultRNG := rand.New(rand.NewSource(*seed * 31))
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		if *failrate > 0 && faultRNG.Float64() < *failrate {
			return nil, fmt.Errorf("injected dial failure")
		}
		return net.DialTimeout("tcp", addr, timeout)
	}

	agents := make(map[trace.DeviceID]*agent.Agent)
	var recorded, flushErrs int
	err = sm.Run(func(s *trace.Sample) error {
		a := agents[s.Device]
		if a == nil {
			var err error
			a, err = agent.New(agent.Config{
				Server: *server,
				Device: s.Device,
				OS:     s.OS,
				Token:  *token,
				Dial:   dial,
			})
			if err != nil {
				return err
			}
			agents[s.Device] = a
		}
		a.Record(s)
		recorded++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	var uploaded, dropped int
	for _, a := range agents {
		if err := a.Close(); err != nil {
			flushErrs++
		}
		st := a.Stats()
		uploaded += st.Uploaded
		dropped += st.Dropped
	}
	log.Printf("devices=%d recorded=%d uploaded=%d dropped=%d close-errors=%d",
		len(agents), recorded, uploaded, dropped, flushErrs)
}
