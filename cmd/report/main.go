// Command report runs the full three-campaign study and writes the
// paper-versus-measured experiment report (the generator behind
// EXPERIMENTS.md).
//
// Usage:
//
//	report -scale 0.25 -seed 1 -o EXPERIMENTS.md
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"smartusage/internal/core"
	"smartusage/internal/obs"
	"smartusage/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	var (
		scale      = flag.Float64("scale", 0.25, "panel scale (1.0 = paper size)")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("o", "", "output file (default stdout)")
		traceDir   = flag.String("tracedir", "", "spool traces to this directory instead of memory")
		workers    = flag.Int("workers", 0, "simulation workers (0 = sequential, -1 = all cores)")
		anaWorkers = flag.Int("analysis-workers", 0, "analysis workers (0 = sequential, -1 = all cores)")
		sketchMode = flag.Bool("sketch", false, "bounded-memory sketch analyzers (~1% quantile error)")
		traceOut   = flag.String("trace-out", "", "write per-stage spans (simulate, prepass, shards, merges) as Chrome trace JSONL to this file")
	)
	flag.Parse()

	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		tracer = obs.NewTracer(f)
		defer tracer.Close()
	}

	st, err := core.RunStudy(core.Options{
		Scale: *scale, Seed: *seed, TraceDir: *traceDir,
		Workers: *workers, AnalysisWorkers: *anaWorkers,
		SketchMode: *sketchMode,
		Tracer:     tracer,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			// The close error is the last chance to learn the report never
			// reached the disk.
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = bufio.NewWriter(f)
	}
	if err := report.Write(w, st); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
