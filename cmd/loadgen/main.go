// Command loadgen stress-tests the ingest path: it replays many concurrent
// synthetic agents against a collector — an in-process one by default, or a
// running collectd over TCP via -addr — driving every upload through the real
// agent batching/retry/spool machinery and the real wire protocol.
//
// It reports client-side ack latency percentiles (p50/p95/p99/max, measured
// per batch flush), sustained samples/sec, and server-side counters scraped
// from the obs /metrics endpoint, then cross-checks exactly-once
// conservation: every sample the fleet reports uploaded must be accepted by
// the collector exactly once (frames == accepted + duplicates, accepted
// samples == fleet uploads, sink receipt == acceptance). Any imbalance
// counts as a conservation error and fails the run.
//
// The results are written as a machine-readable manifest (-out), committed
// next to BENCH_*.json as INGEST_*.json — the ingest performance anchor:
//
//	loadgen -agents 1000 -batches 6 -batch 24 -wal -out INGEST.json
//	loadgen -addr collectd.host:7020 -metrics http://collectd.host:9090 -token s3cret
//
// Against a collector tier, pass every replica to -addrs and every metrics
// endpoint to -metrics; the fleet spreads across replicas by rendezvous
// hashing and fails over on refusal, and server counters are summed across
// endpoints before reconciliation:
//
//	loadgen -addrs host:7020,host:7021,host:7022 \
//	        -metrics http://host:9090,http://host:9091,http://host:9092
//
// In-process mode spins up the collector with a rotating spool (and, with
// -wal, a write-ahead log whose "batch" fsync policy exercises group commit
// under concurrent connections) in a scratch directory that is deleted on
// exit unless -scratch names a path to keep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartusage/internal/agent"
	"smartusage/internal/collector"
	"smartusage/internal/obs"
	"smartusage/internal/trace"
	"smartusage/internal/wal"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("loadgen: ")
	var (
		addr      = flag.String("addr", "", "collectd address to load (empty starts an in-process collector)")
		addrs     = flag.String("addrs", "", "comma-separated collectd tier addresses (overrides -addr; agents pick a rendezvous primary per device and fail over between replicas)")
		metrics   = flag.String("metrics", "", "comma-separated metrics endpoint base URLs to scrape; counters are summed across endpoints (default: the in-process one; required with -addr/-addrs for server-side counters)")
		agents    = flag.Int("agents", 1000, "concurrent synthetic agents")
		batches   = flag.Int("batches", 6, "batches each agent uploads")
		batch     = flag.Int("batch", 24, "samples per batch")
		aps       = flag.Int("aps", 2, "AP observations per sample")
		essids    = flag.Int("essids", 512, "distinct ESSID universe")
		token     = flag.String("token", "", "shared auth token")
		seed      = flag.Int64("seed", 1, "workload rng seed (same seed, same samples)")
		scratch   = flag.String("scratch", "", "scratch dir for in-process collector state (kept; empty uses a deleted temp dir)")
		useWAL    = flag.Bool("wal", false, "give the in-process collector a write-ahead log")
		fsync     = flag.String("fsync", "batch", "WAL fsync policy: batch (group commit), interval, or off")
		fsyncLag  = flag.Duration("fsync-delay", 0, "emulate slow-disk fsync by sleeping this long per WAL fsync (shows group-commit coalescing on fast disks)")
		spool     = flag.Bool("agent-spool", false, "journal each agent's queue to a disk spool in scratch")
		out       = flag.String("out", "", "write the JSON manifest here (stdout always gets a summary)")
		minRate   = flag.Float64("min-rate", 0, "fail unless samples/sec reaches this floor (0 disables)")
		timeout   = flag.Duration("timeout", 5*time.Minute, "overall run deadline")
		keepalive = flag.Duration("read-timeout", 30*time.Second, "in-process collector per-frame read deadline")
	)
	flag.Parse()

	if *agents <= 0 || *batches <= 0 || *batch <= 0 {
		log.Fatal("-agents, -batches, and -batch must be positive")
	}

	// --- target: in-process collector, or a remote one (or a remote tier) --
	scrapeURLs := splitList(*metrics)
	tier := splitList(*addrs)
	target := *addr
	if len(tier) > 0 {
		target = tier[0] // agents dial by cfg.Servers; target is informational
	}
	var (
		cleanup  func()
		sunk     atomic.Int64
		walLog   *wal.Log
		inProcSt func() *collector.Stats
	)
	if target == "" {
		dir := *scratch
		if dir == "" {
			d, err := os.MkdirTemp("", "loadgen-*")
			if err != nil {
				log.Fatal(err)
			}
			dir = d
			defer os.RemoveAll(d)
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}

		reg := obs.NewRegistry()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		msrv := &http.Server{Handler: obs.Handler(reg, nil)}
		go msrv.Serve(ln)
		if len(scrapeURLs) == 0 {
			scrapeURLs = []string{"http://" + ln.Addr().String()}
		}

		sp, err := collector.NewRotatingSpool(filepath.Join(dir, "spool"), 256<<20)
		if err != nil {
			log.Fatal(err)
		}
		spSink := sp.Sink()
		if *useWAL {
			policy, err := wal.ParsePolicy(*fsync)
			if err != nil {
				log.Fatal(err)
			}
			opts := wal.Options{
				Policy:      policy,
				Metrics:     reg,
				MetricsName: "collector",
			}
			if d := *fsyncLag; d > 0 {
				// On fast local disks fsync returns in microseconds, so
				// group-commit rounds rarely overlap and the fsyncs/appends
				// ratio stays near 1. This hook stretches each fsync to a
				// realistic spinning-disk latency so coalescing is visible
				// in the manifest.
				opts.Hook = func(point string) error {
					if point == "group-fsync" {
						time.Sleep(d)
					}
					return nil
				}
			}
			walLog, err = wal.Open(filepath.Join(dir, "wal"), opts)
			if err != nil {
				log.Fatal(err)
			}
		}
		srv, err := collector.New(collector.Config{
			Addr:  "127.0.0.1:0",
			Token: *token,
			Sink: func(s *trace.Sample) error {
				sunk.Add(1)
				return spSink(s)
			},
			ReadTimeout: *keepalive,
			MaxConns:    *agents + 16,
			WAL:         walLog,
			Metrics:     reg,
			Logf:        func(string, ...any) {},
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Listen(); err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		served := make(chan struct{})
		go func() {
			defer close(served)
			srv.Serve(ctx)
		}()
		target = srv.Addr().String()
		inProcSt = srv.Stats
		cleanup = func() {
			cancel()
			<-served
			if walLog != nil {
				if err := walLog.Close(); err != nil {
					log.Printf("loadgen: wal close: %v", err)
				}
			}
			if err := sp.Close(); err != nil {
				log.Printf("loadgen: spool close: %v", err)
			}
			msrv.Close()
		}
		log.Printf("in-process collector on %s (scratch %s, wal=%v fsync=%s), metrics %s",
			target, dir, *useWAL, *fsync, scrapeURLs[0])
	}

	before, err := scrapeAll(scrapeURLs)
	if err != nil {
		log.Fatal(err)
	}

	// --- drive the fleet ---------------------------------------------------
	deadline := time.After(*timeout)
	fleetDone := make(chan fleetResult, 1)
	go func() {
		fleetDone <- runFleet(target, tier, *token, *agents, *batches, *batch, *aps, *essids, *seed, *spool, *scratch)
	}()
	var fleet fleetResult
	select {
	case fleet = <-fleetDone:
	case <-deadline:
		log.Fatalf("run exceeded -timeout %s", *timeout)
	}

	after, err := scrapeAll(scrapeURLs)
	if err != nil {
		log.Fatal(err)
	}
	if cleanup != nil {
		cleanup()
	}

	// --- reconcile ---------------------------------------------------------
	man := buildManifest(fleet, before, after, *agents, *batches, *batch)
	if inProcSt != nil {
		st := inProcSt()
		man.Server.SinkSamples = sunk.Load()
		if sunk.Load() != fleet.uploaded {
			man.conservation("sink received %d samples, fleet uploaded %d", sunk.Load(), fleet.uploaded)
		}
		if st.SinkErrs.Load() != 0 {
			man.conservation("%d sink errors", st.SinkErrs.Load())
		}
	}
	if walLog != nil {
		man.WAL = &walManifest{Fsync: *fsync, Appends: diffCounter(before, after, "wal_appends_total"), Fsyncs: diffCounter(before, after, "wal_fsyncs_total")}
	}

	data, jerr := json.MarshalIndent(map[string]*manifest{"loadgen": man}, "", "  ")
	if jerr != nil {
		log.Fatal(jerr)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	os.Stdout.Write(data)

	log.Printf("%d agents x %d batches x %d samples: %.0f samples/sec, ack p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms, %d retries, %d conservation errors",
		*agents, *batches, *batch, man.SamplesPerSec,
		man.AckLatencyMS.P50, man.AckLatencyMS.P95, man.AckLatencyMS.P99, man.AckLatencyMS.Max,
		man.Client.Retries, len(man.ConservationErrors))
	if len(tier) > 0 {
		log.Printf("tier: %d replicas, %d failovers", len(tier), man.Client.Failovers)
	}
	for _, e := range man.ConservationErrors {
		log.Printf("CONSERVATION: %s", e)
	}
	if len(man.ConservationErrors) > 0 {
		os.Exit(1)
	}
	if *minRate > 0 && man.SamplesPerSec < *minRate {
		log.Printf("FAIL: %.0f samples/sec under the -min-rate floor %.0f", man.SamplesPerSec, *minRate)
		os.Exit(1)
	}
}

// fleetResult aggregates the client side of a run.
type fleetResult struct {
	latencies []time.Duration // one per batch flush, all agents
	duration  time.Duration
	uploaded  int64
	recorded  int64
	dropped   int64
	retries   int64
	failovers int64
	spoolErrs int64
	failures  int64 // agents that errored (flush after retries, or close)
	errs      []string
}

// runFleet spawns the agents, runs every upload, and merges their stats.
func runFleet(target string, tier []string, token string, agents, batches, batchSz, aps, essids int, seed int64, spool bool, scratch string) fleetResult {
	var (
		mu  sync.Mutex
		res fleetResult
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < agents; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lats, st, err := runAgent(target, tier, token, i, batches, batchSz, aps, essids, seed, spool, scratch)
			mu.Lock()
			defer mu.Unlock()
			res.latencies = append(res.latencies, lats...)
			res.uploaded += int64(st.Uploaded)
			res.recorded += int64(st.Recorded)
			res.dropped += int64(st.Dropped)
			res.retries += int64(st.Retries)
			res.failovers += int64(st.Failovers)
			res.spoolErrs += int64(st.SpoolErrs)
			if err != nil {
				res.failures++
				if len(res.errs) < 8 {
					res.errs = append(res.errs, err.Error())
				}
			}
		}(i)
	}
	wg.Wait()
	res.duration = time.Since(start)
	return res
}

// runAgent is one synthetic handset: batches uploads of batchSz samples
// each, every flush timed as one ack latency observation.
func runAgent(target string, tier []string, token string, idx, batches, batchSz, aps, essids int, seed int64, spool bool, scratch string) ([]time.Duration, agent.Stats, error) {
	cfg := agent.Config{
		Server:    target,
		Servers:   tier,
		Device:    trace.DeviceID(1 + idx),
		OS:        trace.Android,
		Token:     token,
		BatchSize: 1 << 30, // flush manually so each batch is one timed upload
		MaxCache:  batchSz * (batches + 1),
	}
	if spool {
		cfg.SpoolDir = filepath.Join(scratch, "agent-spool", fmt.Sprintf("a%05d", idx))
	}
	a, err := agent.New(cfg)
	if err != nil {
		return nil, agent.Stats{}, err
	}
	rng := rand.New(rand.NewSource(seed + int64(idx)))
	lats := make([]time.Duration, 0, batches)
	t := int64(1_400_000_000) + int64(idx)
	var firstErr error
	for b := 0; b < batches; b++ {
		for s := 0; s < batchSz; s++ {
			smp := synthSample(rng, t, aps, essids)
			a.Record(&smp)
			t += 600
		}
		t0 := time.Now()
		err := a.Flush()
		lats = append(lats, time.Since(t0))
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := a.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return lats, a.Stats(), firstErr
}

// synthSample produces one valid sample: a phone associated to one of the
// ESSID universe's APs with a couple of scan results, modest cellular and
// WiFi traffic, and app counters that stay within the interface totals.
func synthSample(rng *rand.Rand, t int64, aps, essids int) trace.Sample {
	s := trace.Sample{
		OS:        trace.Android,
		Time:      t,
		GeoCX:     int16(rng.Intn(100)),
		GeoCY:     int16(rng.Intn(100)),
		WiFiState: trace.WiFiAssociated,
		RAT:       trace.RATLTE,
		CellRX:    uint64(rng.Intn(1 << 16)),
		CellTX:    uint64(rng.Intn(1 << 12)),
		WiFiRX:    uint64(rng.Intn(1 << 20)),
		WiFiTX:    uint64(rng.Intn(1 << 14)),
		Battery:   uint8(rng.Intn(101)),
	}
	s.Apps = []trace.AppTraffic{
		{Category: trace.CatVideo, Iface: trace.WiFi, RX: s.WiFiRX / 2, TX: s.WiFiTX / 2},
		{Category: trace.CatBrowser, Iface: trace.Cellular, RX: s.CellRX / 2, TX: s.CellTX / 2},
	}
	for j := 0; j < aps; j++ {
		id := rng.Intn(essids)
		s.APs = append(s.APs, trace.APObs{
			BSSID:      trace.BSSID(0x1000 + id),
			ESSID:      fmt.Sprintf("ap-%04d", id),
			RSSI:       int8(-40 - rng.Intn(50)),
			Channel:    uint8(1 + rng.Intn(11)),
			Band:       trace.Band24,
			Associated: j == 0,
		})
	}
	return s
}

// --- manifest ---------------------------------------------------------------

type latencyManifest struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type clientManifest struct {
	Uploaded  int64 `json:"uploaded_samples"`
	Recorded  int64 `json:"recorded_samples"`
	Dropped   int64 `json:"dropped_samples"`
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers,omitempty"`
	SpoolErrs int64 `json:"spool_errors"`
	Failures  int64 `json:"agent_failures"`
}

type serverManifest struct {
	Frames      int64 `json:"batch_frames"`
	Accepted    int64 `json:"accepted_batches"`
	DupBatches  int64 `json:"dup_batches"`
	Samples     int64 `json:"accepted_samples"`
	SinkSamples int64 `json:"sink_samples,omitempty"`
	ConnErrs    int64 `json:"conn_errors"`
	SinkErrs    int64 `json:"sink_errors"`
	AuthFails   int64 `json:"auth_failures"`
}

type walManifest struct {
	Fsync   string `json:"fsync"`
	Appends int64  `json:"appends"`
	Fsyncs  int64  `json:"fsyncs"`
}

type manifest struct {
	Agents             int             `json:"agents"`
	BatchesPerAgent    int             `json:"batches_per_agent"`
	SamplesPerBatch    int             `json:"samples_per_batch"`
	DurationSeconds    float64         `json:"duration_seconds"`
	SamplesPerSec      float64         `json:"samples_per_sec"`
	BatchesPerSec      float64         `json:"batches_per_sec"`
	AckLatencyMS       latencyManifest `json:"ack_latency_ms"`
	Client             clientManifest  `json:"client"`
	Server             serverManifest  `json:"server"`
	WAL                *walManifest    `json:"wal,omitempty"`
	ConservationErrors []string        `json:"conservation_errors"`
}

func (m *manifest) conservation(format string, args ...any) {
	m.ConservationErrors = append(m.ConservationErrors, fmt.Sprintf(format, args...))
}

// buildManifest reconciles the fleet's view with the scraped server deltas;
// counter deltas are summed across every scraped endpoint, so a tier of
// share-nothing replicas reconciles as one logical collector.
func buildManifest(fleet fleetResult, before, after []*obs.Snapshot, agents, batches, batchSz int) *manifest {
	m := &manifest{
		Agents:             agents,
		BatchesPerAgent:    batches,
		SamplesPerBatch:    batchSz,
		DurationSeconds:    fleet.duration.Seconds(),
		ConservationErrors: []string{},
		Client: clientManifest{
			Uploaded:  fleet.uploaded,
			Recorded:  fleet.recorded,
			Dropped:   fleet.dropped,
			Retries:   fleet.retries,
			Failovers: fleet.failovers,
			SpoolErrs: fleet.spoolErrs,
			Failures:  fleet.failures,
		},
	}
	if fleet.duration > 0 {
		m.SamplesPerSec = float64(fleet.uploaded) / fleet.duration.Seconds()
		m.BatchesPerSec = float64(len(fleet.latencies)) / fleet.duration.Seconds()
	}
	sort.Slice(fleet.latencies, func(i, j int) bool { return fleet.latencies[i] < fleet.latencies[j] })
	m.AckLatencyMS = latencyManifest{
		P50: ms(pct(fleet.latencies, 50)),
		P95: ms(pct(fleet.latencies, 95)),
		P99: ms(pct(fleet.latencies, 99)),
		Max: ms(pct(fleet.latencies, 100)),
	}

	expected := int64(agents) * int64(batches) * int64(batchSz)
	if fleet.recorded != expected {
		m.conservation("fleet recorded %d samples, expected %d", fleet.recorded, expected)
	}
	if fleet.uploaded != fleet.recorded {
		m.conservation("fleet uploaded %d of %d recorded samples", fleet.uploaded, fleet.recorded)
	}
	if fleet.dropped != 0 {
		m.conservation("fleet dropped %d samples", fleet.dropped)
	}
	if fleet.failures != 0 {
		m.conservation("%d agents failed: %v", fleet.failures, fleet.errs)
	}

	if len(after) > 0 {
		m.Server = serverManifest{
			Frames:     diffCounter(before, after, "collector_batch_frames_total"),
			Accepted:   diffCounter(before, after, "collector_accepted_batches_total"),
			DupBatches: diffCounter(before, after, "collector_dup_batches_total"),
			Samples:    diffCounter(before, after, "collector_samples_total"),
			ConnErrs:   diffCounter(before, after, "collector_conn_errors_total"),
			SinkErrs:   diffCounter(before, after, "collector_sink_errors_total"),
			AuthFails:  diffCounter(before, after, "collector_auth_fails_total"),
		}
		// The exactly-once ledger: every frame is either a fresh acceptance
		// or a deduplicated replay, and accepted samples equal the fleet's
		// uploads — no loss, no double count, even under retries.
		if m.Server.Frames != m.Server.Accepted+m.Server.DupBatches {
			m.conservation("server frames %d != accepted %d + dups %d",
				m.Server.Frames, m.Server.Accepted, m.Server.DupBatches)
		}
		if m.Server.Samples != fleet.uploaded {
			m.conservation("server accepted %d samples, fleet uploaded %d", m.Server.Samples, fleet.uploaded)
		}
		if m.Server.SinkErrs != 0 {
			m.conservation("%d server sink errors", m.Server.SinkErrs)
		}
		if m.Server.AuthFails != 0 {
			m.conservation("%d auth failures", m.Server.AuthFails)
		}
	}
	return m
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// pct is the exact nearest-rank percentile of a sorted slice.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// scrapeAll fetches and parses the JSON metrics exposition from every
// endpoint. No endpoints (remote mode without -metrics) yields nil.
func scrapeAll(bases []string) ([]*obs.Snapshot, error) {
	var snaps []*obs.Snapshot
	for _, base := range bases {
		snap, err := scrape(base)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", base, err)
		}
		snaps = append(snaps, snap)
	}
	return snaps, nil
}

func scrape(base string) (*obs.Snapshot, error) {
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics endpoint: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return obs.ParseJSON(body)
}

// diffCounter is a counter's delta across the run, summed over every scraped
// endpoint — a replica tier's share-nothing counters add up to the tier-wide
// total. A shorter (or nil) before treats those endpoints as starting at zero.
func diffCounter(before, after []*obs.Snapshot, name string) int64 {
	var total int64
	for i, a := range after {
		total += a.CounterTotal(name)
		if i < len(before) {
			total -= before[i].CounterTotal(name)
		}
	}
	return total
}
