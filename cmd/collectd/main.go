// Command collectd runs the central collection server: it accepts
// measurement-agent connections and spools accepted samples to a binary
// trace file. Stop it with SIGINT/SIGTERM for a graceful shutdown — the
// server drains in-flight connections (bounded by -drain-timeout), flushes
// the spool, cuts a final WAL checkpoint, and logs a stats summary. If the
// drain deadline expires with connections still active, collectd exits
// non-zero.
//
// With -wal-dir set, collection is crash-safe: every accepted batch is
// written (and fsynced per -fsync) to a write-ahead log before it is sinked
// or acked, periodic checkpoints bound the log, and a restart replays the
// log — rebuilding per-device dedup state and any samples the spool had not
// yet made durable — so `kill -9` loses nothing that was acked and
// double-sinks nothing on agent retry. WAL mode requires the rotating
// -spool-dir sink (checkpoints align with sealed spool segments).
//
// Usage:
//
//	collectd -addr :7020 -spool collected.trace -token s3cret
//	collectd -addr :7020 -spool-dir spool/ -wal-dir wal/ -fsync batch
//
// A horizontal tier runs N of these, each with its own -wal-dir/-spool-dir
// and a distinct -replica-id (agents take the full address list and fail
// over between them). While a replica replays its WAL at startup /healthz
// reports 503 "recovering", so failover clients route around it. Per-replica
// spools are unioned afterwards with cmd/tiermerge:
//
//	collectd -addr :7020 -replica-id 0 -replicas 3 -spool-dir spool0/ -wal-dir wal0/
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smartusage/internal/collector"
	"smartusage/internal/obs"
	"smartusage/internal/proto"
	"smartusage/internal/trace"
	"smartusage/internal/wal"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("collectd: ")
	var (
		addr         = flag.String("addr", "127.0.0.1:7020", "TCP listen address")
		spool        = flag.String("spool", "collected.trace", "output trace file (single-file mode)")
		spoolDir     = flag.String("spool-dir", "", "rotate trace segments into this directory instead of -spool")
		maxSeg       = flag.Int64("maxseg", 256<<20, "segment size budget for -spool-dir (bytes)")
		token        = flag.String("token", "", "shared auth token (empty disables auth)")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "per-frame read deadline")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "per-frame write deadline")
		maxFrame     = flag.Int("maxframe", proto.MaxFrameSize, "per-frame payload cap (bytes)")
		maxConns     = flag.Int("maxconns", 256, "concurrent connection cap")
		walDir       = flag.String("wal-dir", "", "write-ahead log directory (enables crash-safe collection; requires -spool-dir)")
		fsync        = flag.String("fsync", "batch", "WAL fsync policy: batch (per accepted batch), interval, or off")
		fsyncEvery   = flag.Duration("fsync-interval", time.Second, "sync period for -fsync interval")
		walSeg       = flag.Int64("wal-seg", 64<<20, "WAL segment rotation size (bytes)")
		ckptEvery    = flag.Duration("checkpoint-interval", time.Minute, "WAL checkpoint (and retention) period")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget; expiry with active connections exits non-zero")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
		replicaID    = flag.Int("replica-id", 0, "this instance's index within a collector tier (requires -replicas)")
		replicas     = flag.Int("replicas", 0, "collector tier size; 0 runs standalone")
	)
	flag.Parse()

	var (
		reg    *obs.Registry
		health *obs.Health
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		health = &obs.Health{}
		msrv := obs.Serve(*metricsAddr, reg, health, log.Printf)
		defer msrv.Close()
		log.Printf("metrics on http://%s/metrics", *metricsAddr)
	}

	var (
		sink     collector.Sink
		finish   func() error
		rotating *collector.RotatingSpool
	)
	if *spoolDir != "" {
		sp, err := collector.NewRotatingSpool(*spoolDir, *maxSeg)
		if err != nil {
			log.Fatal(err)
		}
		rotating = sp
		sink = sp.Sink()
		finish = sp.Close
	} else {
		if *walDir != "" {
			log.Fatal("-wal-dir requires -spool-dir (recovery rewinds the spool to sealed segments)")
		}
		f, err := os.Create(*spool)
		if err != nil {
			log.Fatal(err)
		}
		w := trace.NewWriter(f)
		sink = w.Write
		finish = func() error {
			if err := w.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}

	var walLog *wal.Log
	if *walDir != "" {
		// The recovery window starts before the WAL is even opened (opening
		// repairs a torn tail) and ends only after Recover: /healthz must
		// answer 503 throughout, or a failover client probing mid-replay
		// would route traffic to a replica with stale dedup state.
		health.SetRecovering(true)
		policy, err := wal.ParsePolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		walLog, err = wal.Open(*walDir, wal.Options{
			SegmentBytes: *walSeg,
			Policy:       policy,
			Interval:     *fsyncEvery,
			Metrics:      reg,
			MetricsName:  "collector",
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	srv, err := collector.New(collector.Config{
		Addr:          *addr,
		Token:         *token,
		Sink:          sink,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		MaxFrameBytes: *maxFrame,
		MaxConns:      *maxConns,
		ReplicaID:     *replicaID,
		TierReplicas:  *replicas,
		WAL:           walLog,
		Metrics:       reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	if walLog != nil {
		rec, err := srv.Recover(rotating.Restore)
		if err != nil {
			log.Fatal(err)
		}
		health.SetRecovering(false)
		log.Printf("recovered: %s", rec)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	dest := *spool
	if *spoolDir != "" {
		dest = *spoolDir + string(os.PathSeparator) + "spool-*.trace"
	}
	if *replicas > 0 {
		log.Printf("listening on %s as tier replica %d of %d, spooling to %s", srv.Addr(), *replicaID, *replicas, dest)
	} else {
		log.Printf("listening on %s, spooling to %s", srv.Addr(), dest)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	checkpoint := func() error { return srv.Checkpoint(rotating.Seal) }
	if walLog != nil {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := checkpoint(); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx) }()

	drained := true
	select {
	case err := <-served:
		// The listener died on its own (not a signal).
		if err != nil {
			log.Print(err)
		}
	case <-ctx.Done():
		// Graceful drain begins: flip /healthz to 503 so load balancers stop
		// routing new agents here while in-flight connections finish.
		health.SetDraining()
		select {
		case err := <-served:
			if err != nil {
				log.Print(err)
			}
		case <-time.After(*drainTimeout):
			drained = false
			log.Printf("drain deadline (%s) expired with %d connections still active",
				*drainTimeout, srv.Stats().ActiveConns.Load())
		}
	}

	// Final checkpoint before the spool closes: the drained spool is
	// durable, so the WAL shrinks to a snapshot and the next start replays
	// only the tail. After an expired drain the checkpoint is skipped —
	// the WAL still holds everything, and the next start recovers it.
	if walLog != nil && drained {
		if err := checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
	}
	if err := finish(); err != nil {
		log.Fatal(err)
	}
	if walLog != nil {
		if err := walLog.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}

	st := srv.Stats()
	walSegs, walBytes := 0, int64(0)
	if walLog != nil {
		walSegs, walBytes = walLog.Segments(), walLog.Bytes()
	}
	log.Printf("done: %d conns (%d active), %d devices, %d batches (%d dup), %d samples, %d auth failures, %d sink errors, %d errors, wal %d segments / %d bytes",
		st.Conns.Load(), st.ActiveConns.Load(), st.Devices.Load(), st.Batches.Load(), st.DupBatches.Load(),
		st.Samples.Load(), st.AuthFails.Load(), st.SinkErrs.Load(), st.Errors.Load(), walSegs, walBytes)
	if !drained {
		os.Exit(1)
	}
}
