// Command collectd runs the central collection server: it accepts
// measurement-agent connections and spools accepted samples to a binary
// trace file. Stop it with SIGINT/SIGTERM for a graceful shutdown (the
// spool is flushed before exit).
//
// Usage:
//
//	collectd -addr :7020 -spool collected.trace -token s3cret
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"smartusage/internal/collector"
	"smartusage/internal/proto"
	"smartusage/internal/trace"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("collectd: ")
	var (
		addr         = flag.String("addr", "127.0.0.1:7020", "TCP listen address")
		spool        = flag.String("spool", "collected.trace", "output trace file")
		spoolDir     = flag.String("spooldir", "", "rotate segments into this directory instead of -spool")
		maxSeg       = flag.Int64("maxseg", 256<<20, "segment size budget for -spooldir (bytes)")
		token        = flag.String("token", "", "shared auth token (empty disables auth)")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "per-frame read deadline")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "per-frame write deadline")
		maxFrame     = flag.Int("maxframe", proto.MaxFrameSize, "per-frame payload cap (bytes)")
		maxConns     = flag.Int("maxconns", 256, "concurrent connection cap")
	)
	flag.Parse()

	var sink collector.Sink
	var finish func() error
	if *spoolDir != "" {
		sp, err := collector.NewRotatingSpool(*spoolDir, *maxSeg)
		if err != nil {
			log.Fatal(err)
		}
		sink = sp.Sink()
		finish = sp.Close
	} else {
		f, err := os.Create(*spool)
		if err != nil {
			log.Fatal(err)
		}
		w := trace.NewWriter(f)
		sink = w.Write
		finish = func() error {
			if err := w.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}

	srv, err := collector.New(collector.Config{
		Addr:          *addr,
		Token:         *token,
		Sink:          sink,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		MaxFrameBytes: *maxFrame,
		MaxConns:      *maxConns,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	dest := *spool
	if *spoolDir != "" {
		dest = *spoolDir + string(os.PathSeparator) + "spool-*.trace"
	}
	log.Printf("listening on %s, spooling to %s", srv.Addr(), dest)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx); err != nil {
		log.Print(err)
	}
	if err := finish(); err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	log.Printf("done: %d conns, %d devices, %d batches (%d dup), %d samples, %d auth failures, %d sink errors, %d errors",
		st.Conns.Load(), st.Devices.Load(), st.Batches.Load(), st.DupBatches.Load(),
		st.Samples.Load(), st.AuthFails.Load(), st.SinkErrs.Load(), st.Errors.Load())
}
