// Command gentrace simulates one measurement campaign and writes the
// resulting sample stream as a trace file (binary by default, JSON Lines
// with -format jsonl).
//
// Usage:
//
//	gentrace -year 2015 -scale 0.25 -seed 1 -out campaign-2015.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"smartusage/internal/config"
	"smartusage/internal/sim"
	"smartusage/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gentrace: ")
	var (
		year    = flag.Int("year", 2015, "campaign year (2013, 2014, 2015)")
		scale   = flag.Float64("scale", 0.25, "panel scale (1.0 = paper's ~1700 users)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output path (default campaign-<year>.trace)")
		format  = flag.String("format", "binary", "output format: binary or jsonl")
		workers = flag.Int("workers", 0, "simulation workers (0 = sequential, -1 = all cores)")
	)
	flag.Parse()

	cfg, err := config.ForYear(*year, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	sm, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("campaign-%d.trace", *year)
		if *format == "jsonl" {
			path = fmt.Sprintf("campaign-%d.jsonl", *year)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}

	var sink sim.Sink
	var flush func() error
	switch *format {
	case "binary":
		w := trace.NewWriter(f)
		sink, flush = w.Write, w.Flush
	case "jsonl":
		w := trace.NewJSONLWriter(f)
		sink, flush = w.Write, w.Flush
	default:
		log.Fatalf("unknown format %q (want binary or jsonl)", *format)
	}

	n := 0
	counted := func(s *trace.Sample) error {
		n++
		return sink(s)
	}
	if *workers != 0 {
		err = sm.RunConcurrent(*workers, counted)
	} else {
		err = sm.Run(counted)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d samples from %d users to %s", n, len(sm.Panel.Users), path)
}
