// Command traceconv converts trace files between the binary and JSON Lines
// formats, validating every sample on the way through.
//
// Usage:
//
//	traceconv -in campaign.trace -out campaign.jsonl
//	traceconv -in campaign.jsonl -out campaign.trace
//
// The direction is inferred from the input file header (binary traces start
// with the SMTR1 magic); override with -from binary|jsonl.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"smartusage/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceconv: ")
	var (
		in       = flag.String("in", "", "input trace file")
		out      = flag.String("out", "", "output trace file")
		from     = flag.String("from", "", "input format: binary or jsonl (default: sniff)")
		validate = flag.Bool("validate", true, "validate every sample")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("usage: traceconv -in <file> -out <file> [-from binary|jsonl]")
	}

	inF, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer inF.Close()

	format := *from
	if format == "" {
		var magic [5]byte
		if _, err := inF.Read(magic[:]); err != nil {
			log.Fatalf("sniff input: %v", err)
		}
		if string(magic[:]) == "SMTR1" {
			format = "binary"
		} else {
			format = "jsonl"
		}
		if _, err := inF.Seek(0, 0); err != nil {
			log.Fatal(err)
		}
	}

	var read func(fn func(*trace.Sample) error) error
	var toBinary bool
	switch format {
	case "binary":
		read = trace.NewReader(inF).ReadAll
		toBinary = false
	case "jsonl":
		read = trace.NewJSONLReader(inF).ReadAll
		toBinary = true
	default:
		log.Fatalf("unknown format %q", format)
	}

	outF, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	var write func(*trace.Sample) error
	var flush func() error
	if toBinary {
		w := trace.NewWriter(outF)
		write, flush = w.Write, w.Flush
	} else {
		w := trace.NewJSONLWriter(outF)
		write, flush = w.Write, w.Flush
	}

	n := 0
	err = read(func(s *trace.Sample) error {
		if *validate {
			if verr := s.Validate(); verr != nil {
				return fmt.Errorf("sample %d: %w", n+1, verr)
			}
		}
		n++
		return write(s)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := flush(); err != nil {
		log.Fatal(err)
	}
	if err := outF.Close(); err != nil {
		log.Fatal(err)
	}
	toName := "jsonl"
	if toBinary {
		toName = "binary"
	}
	log.Printf("converted %d samples (%s → %s)", n, format, toName)
}
