// Command tiermerge unions the per-replica trace spools of a multi-collector
// tier into one deterministic, exactly-once trace file:
//
//	tiermerge -o merged.trace /var/spool/replica0 /var/spool/replica1 ...
//
// Cross-replica duplicates — the batches an agent retried against a failover
// target after their first replica died — are absorbed; intra-replica
// duplicates and payload conflicts abort with a non-zero exit, because they
// mean a replica (or the tier) violated exactly-once. The output is sorted
// by (device, time), so any enumeration order of the spool directories
// produces the identical file. Feed it to cmd/analyze like any single
// collector's campaign trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"smartusage/internal/tiermerge"
	"smartusage/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tiermerge: ")
	var (
		out   = flag.String("o", "merged.trace", "output trace file")
		quiet = flag.Bool("q", false, "suppress the merge summary")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tiermerge [-o merged.trace] replica-spool-dir...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := trace.NewWriter(f)
	st, err := tiermerge.MergeDirs(dirs, w.Write)
	if err != nil {
		os.Remove(*out)
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		log.Printf("%d replicas, %d segments: %d samples read, %d unique written to %s (%d failover duplicates absorbed)",
			st.Replicas, st.Segments, st.Read, st.Unique, *out, st.FailoverDups)
	}
}
