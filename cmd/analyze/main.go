// Command analyze runs a single experiment on a trace file and prints its
// result as text. Experiment ids follow DESIGN.md (fig2, table3, fig18...).
//
// Usage:
//
//	analyze -trace campaign-2015.trace -year 2015 -exp fig2
//	analyze -exp list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"smartusage/internal/analysis"
	"smartusage/internal/config"
	"smartusage/internal/core"
	"smartusage/internal/population"
	"smartusage/internal/render"
	"smartusage/internal/survey"
)

var experiments = map[string]func(*core.CampaignRun){
	"table1": func(r *core.CampaignRun) {
		o := r.Overview
		fmt.Printf("year=%d android=%d ios=%d total=%d lteShare=%s wifiShare=%s\n",
			o.Year, o.NumAndroid, o.NumIOS, o.Total, render.Pct(o.LTEShare), render.Pct(o.WiFiShare))
	},
	"fig2": func(r *core.CampaignRun) {
		a := r.Aggregate
		render.WeekCurve(os.Stdout, "Cellular RX", a.CellRXMbps, "Mbps")
		render.WeekCurve(os.Stdout, "Cellular TX", a.CellTXMbps, "Mbps")
		render.WeekCurve(os.Stdout, "WiFi RX", a.WiFiRXMbps, "Mbps")
		render.WeekCurve(os.Stdout, "WiFi TX", a.WiFiTXMbps, "Mbps")
		render.WeekAxis(os.Stdout)
		fmt.Printf("WiFi traffic share: %s\n", render.Pct(a.WiFiTrafficShare))
	},
	"fig3": func(r *core.CampaignRun) {
		render.Quantiles(os.Stdout, "daily RX", r.Volumes.AllRX, "MB")
		render.Quantiles(os.Stdout, "daily TX", r.Volumes.AllTX, "MB")
	},
	"fig4": func(r *core.CampaignRun) {
		v := r.Volumes
		render.Quantiles(os.Stdout, "WiFi RX", v.WiFiRX, "MB")
		render.Quantiles(os.Stdout, "WiFi TX", v.WiFiTX, "MB")
		render.Quantiles(os.Stdout, "cell RX", v.CellRX, "MB")
		render.Quantiles(os.Stdout, "cell TX", v.CellTX, "MB")
		fmt.Printf("silent interfaces: cell %s wifi %s\n",
			render.Pct(v.ZeroCellFrac), render.Pct(v.ZeroWiFiFrac))
	},
	"fig5": func(r *core.CampaignRun) {
		render.HeatMap(os.Stdout, r.UserTypes.Grid)
		u := r.UserTypes
		fmt.Printf("cellular-intensive=%s wifi-intensive=%s mixed=%s above-diagonal=%s\n",
			render.Pct(u.CellularIntensiveFrac), render.Pct(u.WiFiIntensiveFrac),
			render.Pct(u.MixedFrac), render.Pct(u.MixedAboveDiagonal))
	},
	"table3": func(r *core.CampaignRun) {
		v := r.VolumeStats
		fmt.Printf("median MB/day: all=%.1f cell=%.1f wifi=%.1f\n", v.MedianAll, v.MedianCell, v.MedianWiFi)
		fmt.Printf("mean   MB/day: all=%.1f cell=%.1f wifi=%.1f\n", v.MeanAll, v.MeanCell, v.MeanWiFi)
	},
	"fig6": func(r *core.CampaignRun) {
		render.WeekCurve(os.Stdout, "WiFi-traffic ratio", r.Ratios.All.TrafficRatio, "")
		render.WeekCurve(os.Stdout, "WiFi-user ratio", r.Ratios.All.UserRatio, "")
		render.WeekAxis(os.Stdout)
		fmt.Printf("means: traffic=%.2f user=%.2f\n", r.Ratios.All.MeanTrafficRatio, r.Ratios.All.MeanUserRatio)
	},
	"fig7": func(r *core.CampaignRun) {
		render.WeekCurve(os.Stdout, "heavy traffic ratio", r.Ratios.Heavy.TrafficRatio, "")
		render.WeekCurve(os.Stdout, "light traffic ratio", r.Ratios.Light.TrafficRatio, "")
		render.WeekAxis(os.Stdout)
		fmt.Printf("means: heavy=%.2f light=%.2f\n", r.Ratios.Heavy.MeanTrafficRatio, r.Ratios.Light.MeanTrafficRatio)
	},
	"fig8": func(r *core.CampaignRun) {
		render.WeekCurve(os.Stdout, "heavy user ratio", r.Ratios.Heavy.UserRatio, "")
		render.WeekCurve(os.Stdout, "light user ratio", r.Ratios.Light.UserRatio, "")
		render.WeekAxis(os.Stdout)
		fmt.Printf("means: heavy=%.2f light=%.2f\n", r.Ratios.Heavy.MeanUserRatio, r.Ratios.Light.MeanUserRatio)
	},
	"fig9": func(r *core.CampaignRun) {
		is := r.IfaceState
		render.WeekCurve(os.Stdout, "Android WiFi-user", is.AndroidUser, "")
		render.WeekCurve(os.Stdout, "Android WiFi-off", is.AndroidOff, "")
		render.WeekCurve(os.Stdout, "Android WiFi-avail", is.AndroidAvailable, "")
		render.WeekCurve(os.Stdout, "iOS WiFi-user", is.IOSUser, "")
		render.WeekAxis(os.Stdout)
		fmt.Printf("daytime means: off=%s available=%s | user And=%s iOS=%s\n",
			render.Pct(is.MeanAndroidOffDaytime), render.Pct(is.MeanAndroidAvailableDaytime),
			render.Pct(is.MeanAndroidUser), render.Pct(is.MeanIOSUser))
	},
	"table4": func(r *core.CampaignRun) {
		c := r.Census
		fmt.Printf("home=%d public=%d other=%d (office=%d) total=%d\n",
			c.Home, c.Public, c.Other, c.Office, c.Total)
	},
	"fig10": func(r *core.CampaignRun) {
		fmt.Println("public AP density:")
		render.HeatMap(os.Stdout, r.Density.Public)
		fmt.Println("home AP density:")
		render.HeatMap(os.Stdout, r.Density.Home)
		fmt.Printf("public cells >=1: %d  >100: %d  strong24>=100: %d  strong5>=100: %d\n",
			r.Density.PublicCellsAny, r.Density.PublicCells100,
			r.Density.StrongCells24_100, r.Density.StrongCells5_100)
	},
	"fig11": func(r *core.CampaignRun) {
		render.WeekCurve(os.Stdout, "home RX", r.Location.RXMbps[analysis.APHome], "Mbps")
		render.WeekCurve(os.Stdout, "public RX", r.Location.RXMbps[analysis.APPublic], "Mbps")
		render.WeekCurve(os.Stdout, "office RX", r.Location.RXMbps[analysis.APOffice], "Mbps")
		render.WeekAxis(os.Stdout)
		fmt.Printf("volume shares: home=%s public=%s office=%s\n",
			render.Pct(r.Location.Share[analysis.APHome]),
			render.Pct(r.Location.Share[analysis.APPublic]),
			render.Pct(r.Location.Share[analysis.APOffice]))
	},
	"fig12": func(r *core.CampaignRun) {
		a := r.APsPerDay
		for b, label := range []string{"all", "heavy", "light"} {
			fmt.Printf("%-5s 1=%s 2=%s 3=%s 4+=%s\n", label,
				render.Pct(a.CountShares[b][1]), render.Pct(a.CountShares[b][2]),
				render.Pct(a.CountShares[b][3]), render.Pct(a.CountShares[b][4]))
		}
		fmt.Printf("multi-AP share=%s max=%d\n", render.Pct(a.MultiAPShare), a.MaxNetworks)
	},
	"table5": func(r *core.CampaignRun) {
		for _, t := range r.APsPerDay.TopBreakdown() {
			fmt.Printf("HPO %d%d%d  %s\n", t.HPO.H, t.HPO.P, t.HPO.O, render.Pct(t.Share))
		}
	},
	"fig13": func(r *core.CampaignRun) {
		d := r.Durations
		for _, c := range []analysis.APClass{analysis.APHome, analysis.APOffice, analysis.APPublic} {
			render.Quantiles(os.Stdout, c.String()+" assoc hours", d.Hours[c], "h")
		}
	},
	"fig14": func(r *core.CampaignRun) {
		b := r.BandShare
		fmt.Printf("5GHz share: home=%s office=%s public=%s\n",
			render.Pct(b.Home), render.Pct(b.Office), render.Pct(b.Public))
	},
	"fig15": func(r *core.CampaignRun) {
		fmt.Printf("mean RSSI: home=%.1f public=%.1f | weak(<-70dBm): home=%s public=%s\n",
			r.RSSI.MeanHome, r.RSSI.MeanPub,
			render.Pct(r.RSSI.WeakFracHome), render.Pct(r.RSSI.WeakFracPub))
	},
	"fig16": func(r *core.CampaignRun) {
		for ch := 1; ch <= 13; ch++ {
			fmt.Printf("ch%-2d home=%s public=%s\n", ch,
				render.Pct(r.Channels.Home[ch]), render.Pct(r.Channels.Public[ch]))
		}
	},
	"fig17": func(r *core.CampaignRun) {
		pa := r.PublicAvail
		fmt.Printf("<10 2.4GHz APs: %s | dev 5GHz any=%s strong=%s | offloadable=%s opportunity=%s\n",
			render.Pct(pa.Frac24Under10), render.Pct(pa.Dev5AnyFrac), render.Pct(pa.Dev5StrongFrac),
			render.Pct(pa.OffloadableFrac), render.Pct(pa.StrongOpportunityFrac))
	},
	"table6": func(r *core.CampaignRun) { printApps(r, false) },
	"table7": func(r *core.CampaignRun) { printApps(r, true) },
	"fig18": func(r *core.CampaignRun) {
		if r.Update == nil {
			fmt.Println("no update event in this campaign (2015 only)")
			return
		}
		u := r.Update
		fmt.Printf("updated=%s day1=%s day4=%s noHome=%s gap=%.1fd via public=%d office=%d\n",
			render.Pct(u.UpdatedFrac), render.Pct(u.FirstDayFrac), render.Pct(u.FirstFourDaysFrac),
			render.Pct(u.UpdatedNoHomeFrac), u.MedianDelayGapDays,
			u.ViaClassNoHome[analysis.APPublic], u.ViaClassNoHome[analysis.APOffice])
	},
	"table2": func(r *core.CampaignRun) {
		if r.Survey == nil {
			fmt.Println("survey needs a fresh simulation (omit -trace)")
			return
		}
		for occ, pctv := range r.Survey.OccupationPct {
			fmt.Printf("%-20s %5.1f%%\n", population.Occupation(occ), pctv)
		}
	},
	"table8": func(r *core.CampaignRun) {
		if r.Survey == nil {
			fmt.Println("survey needs a fresh simulation (omit -trace)")
			return
		}
		for loc := survey.Location(0); loc < survey.NumLocations; loc++ {
			fmt.Printf("%-7s yes=%5.1f%% no=%5.1f%% na=%4.1f%%\n", loc,
				r.Survey.AssocYes[loc], r.Survey.AssocNo[loc], r.Survey.AssocNA[loc])
		}
	},
	"table9": func(r *core.CampaignRun) {
		if r.Survey == nil {
			fmt.Println("survey needs a fresh simulation (omit -trace)")
			return
		}
		for reason := survey.Reason(0); reason < survey.NumReasons; reason++ {
			fmt.Printf("%-20s", reason)
			for loc := survey.Location(0); loc < survey.NumLocations; loc++ {
				v := r.Survey.ReasonPct[loc][reason]
				if v < 0 {
					fmt.Printf("  %7s", "NA")
				} else {
					fmt.Printf("  %6.1f%%", v)
				}
			}
			fmt.Println()
		}
	},
	"interference": func(r *core.CampaignRun) {
		ifr := r.Interfere
		fmt.Printf("2.4GHz co-location pressure: home pairfrac=%s public pairfrac=%s\n",
			render.Pct(ifr.PairFrac[analysis.APHome]), render.Pct(ifr.PairFrac[analysis.APPublic]))
		fmt.Printf("mean interferers: home=%.1f public=%.1f | multi-ESSID sites=%d\n",
			ifr.MeanInterferers[analysis.APHome], ifr.MeanInterferers[analysis.APPublic], ifr.MultiESSIDSites)
	},
	"carriers": func(r *core.CampaignRun) {
		cr := r.Carriers
		fmt.Printf("iOS WiFi-user ratio by carrier: docomo=%s au=%s softbank=%s (max spread %s)\n",
			render.Pct(cr.Ratio[1][0]), render.Pct(cr.Ratio[1][1]), render.Pct(cr.Ratio[1][2]),
			render.Pct(cr.MaxSpreadIOS))
		fmt.Printf("Android:                        docomo=%s au=%s softbank=%s\n",
			render.Pct(cr.Ratio[0][0]), render.Pct(cr.Ratio[0][1]), render.Pct(cr.Ratio[0][2]))
	},
	"battery": func(r *core.CampaignRun) {
		bt := r.Battery
		hours := make([]float64, 24)
		copy(hours, bt.MeanByHour[:])
		fmt.Printf("mean battery by hour |%s|\n", render.Sparkline(hours))
		fmt.Printf("on WiFi=%.1f%% on cellular=%.1f%% low(<20%%)=%s\n",
			bt.MeanAssociated, bt.MeanCellular, render.Pct(bt.LowBatteryFrac))
	},
	"fig19": func(r *core.CampaignRun) {
		c := r.CapEffect
		fmt.Printf("capped users=%s gap=%.2f halved: capped=%s other=%s capped w/o home AP=%s\n",
			render.Pct(c.CappedUserFrac), c.MedianGap,
			render.Pct(c.HalvedFracCapped), render.Pct(c.HalvedFracOther),
			render.Pct(c.CappedNoHomeAPFrac))
	},
}

func printApps(r *core.CampaignRun, tx bool) {
	for sc := analysis.AppScene(0); sc < analysis.NumAppScenes; sc++ {
		shares := r.Apps.RX[sc]
		if tx {
			shares = r.Apps.TX[sc]
		}
		if len(shares) > 5 {
			shares = shares[:5]
		}
		fmt.Printf("%-12s", sc)
		for _, s := range shares {
			fmt.Printf("  %s %.1f%%", s.Category, s.Share*100)
		}
		fmt.Println()
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	var (
		tracePath  = flag.String("trace", "", "binary trace file (empty simulates fresh)")
		year       = flag.Int("year", 2015, "campaign year the trace belongs to")
		scale      = flag.Float64("scale", 0.25, "panel scale (for fresh simulation or count rescaling)")
		seed       = flag.Int64("seed", 1, "random seed (fresh simulation)")
		exp        = flag.String("exp", "", "experiment id (or 'list')")
		workers    = flag.Int("workers", 0, "simulation workers (0 = sequential, -1 = all cores)")
		anaWorkers = flag.Int("analysis-workers", 0, "analysis workers (0 = sequential, -1 = all cores)")
		sketchMode = flag.Bool("sketch", false, "bounded-memory sketch analyzers (~1% quantile error)")
	)
	flag.Parse()

	if *exp == "" || *exp == "list" {
		ids := make([]string, 0, len(experiments))
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println("experiments:", strings.Join(ids, " "))
		return
	}
	fn, ok := experiments[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q (try -exp list)", *exp)
	}

	var run *core.CampaignRun
	var err error
	if *tracePath == "" {
		run, err = core.RunCampaign(*year, core.Options{
			Scale: *scale, Seed: *seed,
			Workers: *workers, AnalysisWorkers: *anaWorkers,
			SketchMode: *sketchMode,
		})
	} else {
		var cfg config.Campaign
		cfg, err = config.ForYear(*year, *scale, *seed)
		if err == nil {
			src := analysis.FileSource(*tracePath)
			if *anaWorkers != 0 {
				run, err = core.AnalyzeCampaignParallel(cfg, nil, src, core.Options{AnalysisWorkers: *anaWorkers, SketchMode: *sketchMode})
			} else {
				run, err = core.AnalyzeCampaign(cfg, nil, src, core.Options{SketchMode: *sketchMode})
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fn(run)
}
