// Command traceinfo inspects a trace file: integrity (every record decodes
// and validates), the device/date inventory, per-OS composition, and
// volume totals. It reads binary traces by default and JSON Lines with
// -format jsonl.
//
// Usage:
//
//	traceinfo campaign-2015.trace
//	traceinfo -format jsonl campaign-2015.jsonl
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"smartusage/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceinfo: ")
	format := flag.String("format", "binary", "trace format: binary or jsonl")
	strict := flag.Bool("strict", true, "validate every sample; exit non-zero on the first violation")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: traceinfo [-format binary|jsonl] <trace-file>")
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	var read func(fn func(*trace.Sample) error) error
	switch *format {
	case "binary":
		read = trace.NewReader(f).ReadAll
	case "jsonl":
		read = trace.NewJSONLReader(f).ReadAll
	default:
		log.Fatalf("unknown format %q", *format)
	}

	type devInfo struct {
		os       trace.OS
		samples  int
		first    int64
		last     int64
		outOfOrd int
	}
	devices := map[trace.DeviceID]*devInfo{}
	var (
		samples, tethered, associated, invalid int
		cellRX, cellTX, wifiRX, wifiTX         uint64
		minT, maxT                             int64
		apPairs                                = map[trace.BSSID]bool{}
	)
	err = read(func(s *trace.Sample) error {
		samples++
		if *strict {
			if verr := s.Validate(); verr != nil {
				invalid++
				return fmt.Errorf("sample %d: %w", samples, verr)
			}
		} else if s.Validate() != nil {
			invalid++
		}
		d := devices[s.Device]
		if d == nil {
			d = &devInfo{os: s.OS, first: s.Time, last: s.Time}
			devices[s.Device] = d
		}
		d.samples++
		if s.Time < d.last {
			d.outOfOrd++
		}
		if s.Time > d.last {
			d.last = s.Time
		}
		if minT == 0 || s.Time < minT {
			minT = s.Time
		}
		if s.Time > maxT {
			maxT = s.Time
		}
		if s.Tethered {
			tethered++
		}
		if s.WiFiState == trace.WiFiAssociated {
			associated++
		}
		cellRX += s.CellRX
		cellTX += s.CellTX
		wifiRX += s.WiFiRX
		wifiTX += s.WiFiTX
		for i := range s.APs {
			apPairs[s.APs[i].BSSID] = true
		}
		return nil
	})
	if err != nil && !errors.Is(err, io.EOF) {
		log.Fatalf("integrity failure after %d samples: %v", samples, err)
	}

	var android, ios, disordered int
	for _, d := range devices {
		if d.os == trace.Android {
			android++
		} else {
			ios++
		}
		disordered += d.outOfOrd
	}
	jst := time.FixedZone("JST", 9*3600)
	fmt.Printf("file:        %s (%s)\n", path, *format)
	fmt.Printf("samples:     %d (%d tethered, %d associated, %d invalid)\n",
		samples, tethered, associated, invalid)
	fmt.Printf("devices:     %d (%d android, %d ios)\n", len(devices), android, ios)
	if samples > 0 {
		fmt.Printf("time range:  %s .. %s\n",
			time.Unix(minT, 0).In(jst).Format("2006-01-02 15:04"),
			time.Unix(maxT, 0).In(jst).Format("2006-01-02 15:04"))
	}
	fmt.Printf("volumes:     cell RX %.1f MB / TX %.1f MB, wifi RX %.1f MB / TX %.1f MB\n",
		float64(cellRX)/1e6, float64(cellTX)/1e6, float64(wifiRX)/1e6, float64(wifiTX)/1e6)
	fmt.Printf("unique APs:  %d BSSIDs observed\n", len(apPairs))
	if disordered > 0 {
		fmt.Printf("WARNING: %d out-of-order samples across devices\n", disordered)
	}
	if invalid > 0 {
		os.Exit(1)
	}
}
