# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench bench-json bench-diff bench-multicore check lint smuvet smuvet-determinism fmt-check bench-smoke fuzz-smoke chaos crash tier-soak soak-1m external-smoke report experiments experiments-full ingest-smoke ingest-json clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench . -benchmem .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# One-iteration benchmark pass: catches bit-rot in benchmark code (and the
# decode-count assertions inside it) without paying for real measurements.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Machine-readable benchmark manifest: one-iteration measurements for every
# benchmark, keyed "<pkg>.<Benchmark>" → ns/op, B/op, allocs/op. CI uploads
# the result as an artifact so a branch's perf trajectory is one download
# away. One iteration is smoke-grade — it anchors allocation counts exactly
# but ns/op only roughly; use `make bench` on a quiet machine for real
# timings.
BENCH_JSON ?= BENCH_8.json
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# Perf-regression gate: rerun the one-iteration benchmark pass and diff it
# against the committed anchor ($(BENCH_JSON)). Fails on any metric beyond
# tolerance — loose on ns/op (noisy at one iteration, ignored below 1 ms),
# tight on bytes/op and allocs/op (deterministic). Writes the fresh manifest
# to $(BENCH_DIFF_OUT) so CI can publish it next to the verdict.
BENCH_DIFF_OUT ?= bench-current.json
bench-diff:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem ./... | \
		$(GO) run ./cmd/benchjson -o $(BENCH_DIFF_OUT) -diff $(BENCH_JSON)

# Multi-core scaling gate: times the sharded analysis path against the
# sequential one and (on >= 4 cores) asserts a >= 2x speedup. On smaller
# machines the ratio is logged but not enforced.
bench-multicore:
	$(GO) test -run TestMultiCoreSpeedup -count=1 -v ./internal/core

# Ingest load test: 1000 concurrent agents replayed against an in-process
# WAL-backed collector through the real retry/spool machinery; fails on any
# conservation error or a samples/sec below the floor. ingest-json writes the
# committed throughput anchor (INGEST_7.json).
INGEST_JSON ?= INGEST_7.json
INGEST_MIN_RATE ?= 5000
ingest-smoke:
	$(GO) run ./cmd/loadgen -agents 1000 -batches 6 -batch 24 -wal -min-rate $(INGEST_MIN_RATE) -out ingest-current.json

ingest-json:
	$(GO) run ./cmd/loadgen -agents 1000 -batches 6 -batch 24 -wal -min-rate $(INGEST_MIN_RATE) -out $(INGEST_JSON)

# Short fuzz pass over every fuzz target: catches decoder panics and
# round-trip regressions without a dedicated fuzzing farm.
FUZZTIME ?= 10s
fuzz-smoke:
	for t in FuzzDecodeSample FuzzUnmarshalJSONSample; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/trace || exit 1; \
	done
	for t in FuzzDecodeHello FuzzDecodeBatch FuzzReadFrame; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/proto || exit 1; \
	done
	$(GO) test -run '^$$' -fuzz '^FuzzReadWALRecord$$' -fuzztime $(FUZZTIME) ./internal/wal || exit 1
	for t in FuzzSketchDecode FuzzHLLDecode; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/sketch || exit 1; \
	done

# The repo's own multichecker, eight analyzers: aliasret, closeerr,
# commitpair, determinism, guardedby, lockorder, poollife, shardmerge. See
# DESIGN.md "Static analysis" for what each analyzer enforces and the
# //smuvet:allow suppression syntax (including the stale-allow sweep).
smuvet:
	$(GO) run ./cmd/smuvet ./...

# Byte-stability gate for smuvet's machine-readable output: -json and -sarif
# must produce identical bytes across runs over an identical tree, so CI
# artifacts can be diffed.
smuvet-determinism:
	./scripts/smuvet-determinism.sh

# Third-party linters are version-pinned and fetched on demand, so they only
# run where the network is available (CI sets LINT_THIRD_PARTY=1); the
# in-tree checks always run.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3
lint: fmt-check vet smuvet
ifeq ($(LINT_THIRD_PARTY),1)
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...
endif

# Chaos soak: agents push batches through every fault mix under the race
# detector, asserting exactly-once delivery end to end.
chaos:
	$(GO) test -race -run TestChaosSoak -count=1 ./internal/faultnet

# Kill-restart soak: the collector is crashed at every durability crash
# point (torn WAL append, pre-fsync, pre-sink, pre-ack) and cold-started
# from its WAL, agents are killed and rebuilt from their disk spools, and
# exactly-once delivery is asserted across the restarts, under -race.
crash:
	$(GO) test -race -run TestCrashRestartSoak -count=1 ./internal/faultnet

# Tier-failover soak: whole collector replicas are killed (and cold-started
# from their WALs) at every durability crash point while agents fail over
# between replicas; per-replica spools are then tiermerged and exactly-once
# conservation is asserted against a fault-free baseline, under -race.
tier-soak:
	$(GO) test -race -run TestTierFailoverSoak -count=1 ./internal/faultnet

# Bounded-memory scale proof: stream SOAK_DEVICES devices (a million by
# default here) through the sketch battery under a MemStats watchdog. The
# test asserts the peak heap stays under a per-device ceiling AND that the
# exact path's accumulator lower bound would have blown through it. Set
# SOAK_MEMSTATS_OUT to keep the measurements as a JSON artifact.
SOAK_DEVICES ?= 1000000
soak-1m:
	SOAK_DEVICES=$(SOAK_DEVICES) SOAK_MEMSTATS_OUT=$(SOAK_MEMSTATS_OUT) \
		$(GO) test -run '^TestSketchSoak$$' -count=1 -v -timeout 30m ./internal/analysis

# External tier smoke: three real collectd processes on loopback driven by
# loadgen over the wire protocol, SIGTERM-drained, and tiermerged — covers
# the built binaries, flags, signals, and HTTP surface the in-process suites
# cannot.
external-smoke:
	./scripts/external-smoke.sh

# The full CI gate: lint (formatting, vet, smuvet), race-enabled tests,
# benchmark smoke, fuzz smoke, chaos + kill-restart + tier-failover soaks,
# and the in-process + external ingest smokes.
check: lint
	$(GO) test -race ./...
	$(MAKE) bench-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) chaos
	$(MAKE) crash
	$(MAKE) tier-soak
	$(MAKE) ingest-smoke
	$(MAKE) external-smoke

# Regenerate EXPERIMENTS.md at the reference scale.
experiments:
	$(GO) run ./cmd/report -scale 0.25 -seed 1 -o EXPERIMENTS.md

# Full-scale (paper-sized) report; needs ~2 GB of temp disk for traces.
experiments-full:
	$(GO) run ./cmd/report -scale 1.0 -seed 1 -workers -1 -tracedir /tmp/smartusage-traces -o EXPERIMENTS.md

# Removes run artifacts from the repo root (collectd spool/WAL dirs as named
# in the docs, report/agentsim outputs, loadgen manifests), loadgen scratch
# kept via -scratch, and soak scratch left in TMPDIR by killed test runs (a
# completed run cleans its own t.TempDir; loadgen deletes its own temp dir
# unless killed mid-run).
clean:
	rm -f campaign-*.trace campaign-*.jsonl collected.trace bench-current.json ingest-current.json
	rm -rf spool wal loadgen-scratch $${TMPDIR:-/tmp}/TestChaosSoak* $${TMPDIR:-/tmp}/TestCrashRestartSoak* $${TMPDIR:-/tmp}/loadgen-*
