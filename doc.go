// Package smartusage is a full reproduction of "Tracking the Evolution and
// Diversity in Network Usage of Smartphones" (Fukuda, Asai, Nagami —
// IMC 2015) as a Go library: a calibrated synthetic Greater-Tokyo
// measurement substrate (population, mobility, WiFi/cellular radio models,
// application traffic), the on-device agent and TCP collection server of
// the paper's §2 methodology, and an analysis pipeline that regenerates
// every table and figure of the evaluation.
//
// Start with internal/core for the orchestration API, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured results of a reference run.
package smartusage
