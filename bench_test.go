// Benchmarks: one per table and figure of the paper (the harness that
// regenerates each artifact), plus the substrate hot paths (simulation,
// codecs, wire protocol, collection).
//
// The per-experiment benchmarks measure the cost of computing that
// experiment's result from an already-simulated campaign: prepass-derived
// experiments (Tables 1/3/4, Figs. 5/10/13-16/19...) re-run their
// derivation; streaming experiments (Figs. 2/6-9/11/12/17, Tables 5-7)
// re-run their analyzer over the in-memory sample stream.
package smartusage_test

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"sync"
	"testing"

	"smartusage/internal/agent"
	"smartusage/internal/analysis"
	"smartusage/internal/collector"
	"smartusage/internal/config"
	"smartusage/internal/core"
	"smartusage/internal/macro"
	"smartusage/internal/proto"
	"smartusage/internal/sim"
	"smartusage/internal/survey"
	"smartusage/internal/trace"
)

// The fixture simulation is deterministic, so analyzer benchmarks are
// stable across runs.

// fixture holds one simulated 2015 campaign shared by all benchmarks.
type fixture struct {
	cfg     config.Campaign
	sim     *sim.Simulator
	samples []trace.Sample
	src     analysis.Source
	prep    *analysis.Prep
	meta    analysis.Meta
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		cfg, err := config.ForYear(2015, 0.06, 7)
		if err != nil {
			panic(err)
		}
		sm, err := sim.New(cfg)
		if err != nil {
			panic(err)
		}
		f := &fixture{cfg: cfg, sim: sm, meta: analysis.MetaFor(cfg)}
		if err := sm.Run(func(s *trace.Sample) error {
			f.samples = append(f.samples, *s.Clone())
			return nil
		}); err != nil {
			panic(err)
		}
		f.src = analysis.SliceSource(f.samples)
		release := cfg.Update.Release
		prep, err := analysis.BuildPrep(f.meta, f.src, &release)
		if err != nil {
			panic(err)
		}
		f.prep = prep
		fix = f
	})
	return fix
}

// --- substrate benchmarks ----------------------------------------------------

func BenchmarkSimulate(b *testing.B) {
	cfg, err := config.ForYear(2014, 0.02, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Days = 5
	cfg.Update = nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := sm.Run(func(*trace.Sample) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "samples/op")
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	f := getFixture(b)
	var buf []byte
	var bytesOut int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &f.samples[i%len(f.samples)]
		buf = trace.AppendSample(buf[:0], s)
		bytesOut += int64(len(buf))
	}
	b.SetBytes(bytesOut / int64(b.N))
}

func BenchmarkTraceDecode(b *testing.B) {
	f := getFixture(b)
	encoded := make([][]byte, 1024)
	for i := range encoded {
		encoded[i] = trace.AppendSample(nil, &f.samples[i%len(f.samples)])
	}
	var s trace.Sample
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.DecodeSample(encoded[i%len(encoded)], &s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtoBatchRoundTrip(b *testing.B) {
	f := getFixture(b)
	batch := proto.Batch{BatchID: 1, Samples: f.samples[:64]}
	var out proto.Batch
	var payload []byte
	// One warm round trip primes the scratch pool, the decode target's
	// slices, and the ESSID interner, so the one-iteration manifest records
	// the steady state.
	payload = proto.AppendBatch(payload[:0], &batch)
	if err := proto.DecodeBatch(payload, &out); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload = proto.AppendBatch(payload[:0], &batch)
		if err := proto.DecodeBatch(payload, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrepass(b *testing.B) {
	f := getFixture(b)
	release := f.cfg.Update.Release
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.BuildPrep(f.meta, f.src, &release); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAgentCollector measures end-to-end upload throughput over
// loopback TCP.
func BenchmarkAgentCollector(b *testing.B) {
	f := getFixture(b)
	n := 0
	srv, err := collector.New(collector.Config{
		Addr: "127.0.0.1:0",
		Sink: func(*trace.Sample) error { n++; return nil },
		Logf: func(string, ...any) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()

	dev := f.samples[0].Device
	a, err := agent.New(agent.Config{
		Server: srv.Addr().String(), Device: dev, OS: trace.Android,
		BatchSize: 1 << 30, // flush manually
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := f.samples[i%4096]
		s.Device = dev
		a.Record(&s)
		if a.Pending() >= 256 {
			if err := a.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := a.Close(); err != nil {
		b.Fatal(err)
	}
}

// --- one benchmark per paper artifact ---------------------------------------

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := macro.CellShareOfRBB(2014); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.Overview()
	}
}

func BenchmarkTable2(b *testing.B) {
	f := getFixture(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := survey.Conduct(2015, f.sim.Panel, f.prep, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// runAnalyzer streams the fixture through one analyzer with the paper's
// cleaning rules applied.
func runAnalyzer(b *testing.B, f *fixture, a analysis.Analyzer) {
	b.Helper()
	if err := analysis.Run(f.src, f.prep, []analysis.Analyzer{a}, nil); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig2(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := analysis.NewAggregate(f.meta)
		runAnalyzer(b, f, agg)
		_ = agg.Result()
	}
}

func BenchmarkFig3(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.DailyVolumes()
	}
}

func BenchmarkFig4(b *testing.B) { BenchmarkFig3(b) }

func BenchmarkFig5(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.UserTypes()
	}
}

func BenchmarkTable3(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := f.prep.VolumeStats()
		if _, err := analysis.Growth([]analysis.VolumeStats{v, v, v}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.NewWiFiRatios(f.meta, f.prep)
		runAnalyzer(b, f, r)
		_ = r.Result()
	}
}

func BenchmarkFig7(b *testing.B) { BenchmarkFig6(b) }
func BenchmarkFig8(b *testing.B) { BenchmarkFig6(b) }

func BenchmarkFig9(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		is := analysis.NewInterfaceState(f.meta)
		runAnalyzer(b, f, is)
		_ = is.Result()
	}
}

func BenchmarkTable4(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.APCensus()
	}
}

func BenchmarkFig10(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.APDensity()
	}
}

func BenchmarkFig11(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt := analysis.NewLocationTraffic(f.meta, f.prep)
		runAnalyzer(b, f, lt)
		_ = lt.Result()
	}
}

func BenchmarkFig12(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apd := analysis.NewAPsPerDay(f.meta, f.prep)
		runAnalyzer(b, f, apd)
		_ = apd.Result()
	}
}

func BenchmarkTable5(b *testing.B) { BenchmarkFig12(b) }

func BenchmarkFig13(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad := analysis.NewAssocDuration(f.meta, f.prep)
		runAnalyzer(b, f, ad)
		_ = ad.Result()
	}
}

func BenchmarkFig14(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.BandShare()
	}
}

func BenchmarkFig15(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.RSSI()
	}
}

func BenchmarkFig16(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.Channels()
	}
}

func BenchmarkFig17(b *testing.B) {
	f := getFixture(b)
	// Warm the interval-slice pool; the timed loop then measures the pooled
	// steady state (each iteration releases its slabs for the next).
	{
		pa := analysis.NewPublicAvailability(f.prep)
		runAnalyzer(b, f, pa)
		_ = pa.Result()
		pa.Release()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa := analysis.NewPublicAvailability(f.prep)
		runAnalyzer(b, f, pa)
		_ = pa.Result()
		pa.Release()
	}
}

func BenchmarkTable6(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab := analysis.NewAppBreakdown(f.meta, f.prep)
		runAnalyzer(b, f, ab)
		_ = ab.Result()
	}
}

func BenchmarkTable7(b *testing.B) { BenchmarkTable6(b) }

func BenchmarkFig18(b *testing.B) {
	f := getFixture(b)
	release := f.cfg.Update.Release
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ut := analysis.NewUpdateTiming(f.meta, f.prep, release)
		if err := analysis.Run(f.src, f.prep, nil, []analysis.Analyzer{ut}); err != nil {
			b.Fatal(err)
		}
		_ = ut.Result()
	}
}

func BenchmarkFig19(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.CapEffect()
	}
}

func BenchmarkTable8(b *testing.B) { BenchmarkTable2(b) }
func BenchmarkTable9(b *testing.B) { BenchmarkTable2(b) }

func BenchmarkImplications(b *testing.B) {
	f := getFixture(b)
	v := f.prep.VolumeStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := macro.ComputeImplications(2015, v.MedianCell, v.MedianWiFi, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullCampaign measures the complete simulate-and-analyze path at
// a small scale — the end-to-end cost of regenerating one campaign's
// worth of results.
func BenchmarkFullCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunCampaign(2013, core.Options{Scale: 0.02, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceFileRoundTrip measures trace spooling throughput: encode a
// block of samples and stream them back.
func BenchmarkTraceFileRoundTrip(b *testing.B) {
	f := getFixture(b)
	block := f.samples
	if len(block) > 50_000 {
		block = block[:50_000]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		for j := range block {
			if err := w.Write(&block[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := trace.NewReader(&buf).ReadAll(func(*trace.Sample) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != len(block) {
			b.Fatalf("round trip lost samples: %d of %d", n, len(block))
		}
		b.SetBytes(int64(buf.Cap()))
	}
}

// --- extension benchmarks ----------------------------------------------------

func BenchmarkInterference(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.prep.Interference()
	}
}

func BenchmarkBattery(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ba := analysis.NewBattery(f.meta)
		runAnalyzer(b, f, ba)
		_ = ba.Result()
	}
}

func BenchmarkCarrierRatios(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr := analysis.NewCarrierRatios()
		runAnalyzer(b, f, cr)
		_ = cr.Result()
	}
}

// --- design-choice ablations --------------------------------------------------

// Sequential vs concurrent simulation: the cost of the re-sequencing
// machinery and the win from parallelism.
func BenchmarkSimulateConcurrent(b *testing.B) {
	cfg, err := config.ForYear(2014, 0.02, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Days = 5
	cfg.Update = nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := sm.RunConcurrent(-1, func(*trace.Sample) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// Binary vs JSONL codec: the cost of the human-readable format.
func BenchmarkJSONLEncode(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.MarshalJSONSample(&f.samples[i%len(f.samples)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONLDecode(b *testing.B) {
	f := getFixture(b)
	lines := make([][]byte, 512)
	for i := range lines {
		line, err := trace.MarshalJSONSample(&f.samples[i%len(f.samples)])
		if err != nil {
			b.Fatal(err)
		}
		lines[i] = line
	}
	var s trace.Sample
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.UnmarshalJSONSample(lines[i%len(lines)], &s); err != nil {
			b.Fatal(err)
		}
	}
}

// In-memory vs on-disk analysis source: the cost of spooling through a
// trace file instead of RAM.
func BenchmarkPrepassFromFile(b *testing.B) {
	f := getFixture(b)
	dir := b.TempDir()
	path := dir + "/bench.trace"
	out, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	w := trace.NewWriter(out)
	for i := range f.samples {
		if err := w.Write(&f.samples[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	out.Close()
	release := f.cfg.Update.Release
	src := analysis.FileSource(path)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.BuildPrep(f.meta, src, &release); err != nil {
			b.Fatal(err)
		}
	}
}
