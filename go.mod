module smartusage

go 1.22
