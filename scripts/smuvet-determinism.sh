#!/bin/sh
# Byte-stability gate for smuvet's machine-readable output: run the
# multichecker twice in -json mode and twice in -sarif mode over the analyzer
# fixture packages — the only tree guaranteed to produce diagnostics from
# every analyzer — and require byte-identical output. This catches map-order
# or position nondeterminism in the analyzers and the encoders before a
# consumer starts diffing CI runs.
#
# The fixture directories must be named explicitly: go list wildcards skip
# testdata, which is exactly why the fixtures live there.
set -eu
cd "$(dirname "$0")/.."

DIRS="./internal/smuvet/testdata/src/sim \
./internal/smuvet/testdata/src/analysis \
./internal/smuvet/testdata/src/guarded \
./internal/smuvet/testdata/src/wal \
./internal/smuvet/testdata/src/zerocopy \
./internal/smuvet/testdata/src/pooled \
./internal/smuvet/testdata/src/commit \
./internal/smuvet/testdata/src/collector \
./internal/smuvet/testdata/src/macro"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_mode() { # $1 = output flag, $2 = output file
	set +e
	# shellcheck disable=SC2086  # DIRS is a word list on purpose
	go run ./cmd/smuvet "$1" $DIRS >"$2"
	st=$?
	set -e
	# Exit 1 means diagnostics were found, which is the point of the
	# fixtures; anything else is a load or encode failure.
	if [ "$st" -ne 1 ]; then
		echo "smuvet-determinism: expected exit 1 (fixture diagnostics) from smuvet $1, got $st" >&2
		exit 1
	fi
}

for flag in -json -sarif; do
	run_mode "$flag" "$tmp/a"
	run_mode "$flag" "$tmp/b"
	if ! cmp -s "$tmp/a" "$tmp/b"; then
		echo "smuvet-determinism: smuvet $flag output differs between two runs over an identical tree:" >&2
		diff "$tmp/a" "$tmp/b" >&2 || true
		exit 1
	fi
	echo "smuvet-determinism: $flag output byte-stable ($(wc -c <"$tmp/a") bytes)"
done
