#!/usr/bin/env bash
# External ingest smoke: a real 3-replica collectd tier as separate OS
# processes on loopback, driven by loadgen through the wire protocol, then
# gracefully drained with SIGTERM and unioned with tiermerge.
#
# This is the one test layer the in-process suites cannot cover: the actual
# built binaries, flag parsing, signal handling, process-exit codes, and the
# /healthz + /metrics HTTP surface, all talking over real sockets. It fails
# on any loadgen conservation error, a non-zero collectd exit, a tiermerge
# merge error, or a merged sample count that disagrees with what the fleet
# uploaded.
#
# Fixed loopback ports (17020-17022 data, 19090-19092 metrics) keep the run
# reproducible; override with SMOKE_PORT_BASE / SMOKE_METRICS_BASE if they
# collide on a dev box.
set -euo pipefail

cd "$(dirname "$0")/.."

REPLICAS=3
PORT_BASE=${SMOKE_PORT_BASE:-17020}
METRICS_BASE=${SMOKE_METRICS_BASE:-19090}
AGENTS=${SMOKE_AGENTS:-200}
BATCHES=${SMOKE_BATCHES:-3}
BATCH=${SMOKE_BATCH:-8}

scratch=$(mktemp -d "${TMPDIR:-/tmp}/external-smoke.XXXXXX")
pids=()

cleanup() {
    local code=$?
    for pid in "${pids[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    if [ "$code" -ne 0 ]; then
        echo "--- collectd logs (run failed) ---" >&2
        cat "$scratch"/collectd-*.log >&2 2>/dev/null || true
    fi
    rm -rf "$scratch"
    exit "$code"
}
trap cleanup EXIT

echo "building binaries..."
go build -o "$scratch/bin/" ./cmd/collectd ./cmd/loadgen ./cmd/tiermerge

# http_status <host:port> <path> — status line of a GET, via /dev/tcp so the
# script has no curl/wget dependency.
http_status() {
    exec 3<>"/dev/tcp/${1%%:*}/${1##*:}" || return 1
    printf 'GET %s HTTP/1.0\r\nHost: %s\r\n\r\n' "$2" "$1" >&3
    head -n1 <&3
    exec 3<&- 3>&-
}

wait_healthy() {
    for _ in $(seq 1 100); do
        if http_status "$1" /healthz 2>/dev/null | grep -q ' 200 '; then
            return 0
        fi
        sleep 0.1
    done
    echo "replica at $1 never became healthy" >&2
    return 1
}

addrs=""
metrics=""
for r in $(seq 0 $((REPLICAS - 1))); do
    data_addr="127.0.0.1:$((PORT_BASE + r))"
    metrics_addr="127.0.0.1:$((METRICS_BASE + r))"
    "$scratch/bin/collectd" \
        -addr "$data_addr" \
        -replica-id "$r" -replicas "$REPLICAS" \
        -spool-dir "$scratch/spool$r" -wal-dir "$scratch/wal$r" \
        -checkpoint-interval 2s \
        -metrics-addr "$metrics_addr" \
        >"$scratch/collectd-$r.log" 2>&1 &
    pids[r]=$!
    addrs="$addrs${addrs:+,}$data_addr"
    metrics="$metrics${metrics:+,}http://$metrics_addr"
done
for r in $(seq 0 $((REPLICAS - 1))); do
    wait_healthy "127.0.0.1:$((METRICS_BASE + r))"
done
echo "tier up: $addrs"

"$scratch/bin/loadgen" \
    -addrs "$addrs" -metrics "$metrics" \
    -agents "$AGENTS" -batches "$BATCHES" -batch "$BATCH" \
    -out "$scratch/ingest.json"

# Graceful drain: SIGTERM must exit 0 (checkpoint cut, spool flushed).
for r in $(seq 0 $((REPLICAS - 1))); do
    kill -TERM "${pids[r]}"
done
for r in $(seq 0 $((REPLICAS - 1))); do
    if ! wait "${pids[r]}"; then
        echo "replica $r exited non-zero on SIGTERM" >&2
        exit 1
    fi
done
pids=()

# Union the per-replica spools; the tier must conserve every sample.
spools=()
for r in $(seq 0 $((REPLICAS - 1))); do
    spools+=("$scratch/spool$r")
done
merge_out=$("$scratch/bin/tiermerge" -o "$scratch/merged.trace" "${spools[@]}" 2>&1)
echo "$merge_out"
want=$((AGENTS * BATCHES * BATCH))
if ! echo "$merge_out" | grep -q " $want unique "; then
    echo "merged trace does not hold exactly $want unique samples" >&2
    exit 1
fi

echo "external smoke PASS: $want samples through $REPLICAS collectd processes, merged exactly-once"
